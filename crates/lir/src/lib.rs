//! # jitbull-lir — the low-level IR backend
//!
//! Steps ⑤–⑦ of the paper's Figure 1: the optimized MIR (`MIR'`) is
//! lowered to a **LIR** ("low-level intermediate representation …
//! focuses on binary code generation"), the LIR undergoes its own
//! backend passes, and the result is what the optimizing tier actually
//! executes.
//!
//! The backend performs the real compiler work a native JIT would:
//!
//! * [`mod@lower`] — **out-of-SSA translation**: phis become parallel move
//!   groups on the incoming edges (critical edges were split by the MIR
//!   pipeline), sequentialized with cycle breaking through a scratch
//!   register;
//! * [`regalloc`] — **linear-scan register allocation** over liveness
//!   intervals computed by backward dataflow, with spill slots when the
//!   16 simulated machine registers run out;
//! * [`passes`] — LIR-level cleanups (redundant-move elimination, jump
//!   threading through empty blocks);
//! * [`exec`] — the LIR executor: a register machine over
//!   [`jitbull_vm::Value`] cells with the same raw-vs-guarded memory
//!   semantics as the MIR executor, so removed `boundscheck`/`unbox`
//!   guards stay exploitable end to end.
//!
//! JITBULL itself never sees LIR — the paper instruments the MIR
//! optimization passes only (§V: "specifically within the optimization
//! passes for MIR code") — but the engine's optimizing tier runs the
//! LIR produced here, completing the compilation pipeline.

pub mod exec;
pub mod lir;
pub mod lower;
pub mod passes;
pub mod regalloc;

pub use exec::run;
pub use lir::{GuardRefs, LBlockId, LFunction, LInstr, LOp, Loc, VReg};
pub use lower::lower;
pub use regalloc::{allocate, Allocation};

use jitbull_mir::MirFunction;

/// Compiles optimized MIR all the way to executable, register-allocated
/// LIR (lower → LIR passes → register allocation).
pub fn compile(mir: &MirFunction) -> LFunction {
    let mut f = lower(mir);
    passes::thread_jumps(&mut f);
    let allocation = allocate(&f);
    regalloc::apply(&mut f, &allocation);
    // Move elimination is location-aware, so it runs post-allocation.
    passes::eliminate_redundant_moves(&mut f);
    f
}

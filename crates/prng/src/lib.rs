//! # jitbull-prng — a dependency-free seeded PRNG
//!
//! The repository deliberately carries no external crates (the build must
//! work fully offline), so the fuzzer and the randomized test suites share
//! this hand-rolled generator instead of `rand`. The core is SplitMix64
//! (Steele, Lea & Flood; the same mixer `rand` uses to seed its own
//! generators): a 64-bit state marched by a Weyl constant and finalized
//! with two xor-shift-multiply rounds. It is statistically strong enough
//! for program generation and property-style testing, trivially
//! deterministic, and `Copy`-cheap.
//!
//! The API intentionally mirrors the subset of `rand::Rng` the repo used:
//! [`Rng::gen_range`], [`Rng::gen_bool`], plus a few conveniences
//! ([`Rng::pick`], [`Rng::next_f64`]).
//!
//! # Examples
//!
//! ```
//! use jitbull_prng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..7u32);
//! assert!((1..7).contains(&die));
//! // Same seed, same stream.
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen_range(1..7u32), die);
//! ```

use std::ops::Range;

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: Weyl sequence + xorshift-multiply finalizer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit output (upper half of the 64-bit word).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value uniform in `range` (half-open, like `rand::gen_range`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.gen_range(0..slice.len())]
    }
}

/// Types [`Rng::gen_range`] can sample.
pub trait SampleRange: Copy + PartialOrd {
    /// Uniform sample from the half-open `range`.
    fn sample(rng: &mut Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < 2^-32 for every span the repo uses;
                // acceptable for fuzzing and test generation.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i64 - range.start as i64) as u64;
                (range.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let s = rng.gen_range(-9i64..10);
            assert!((-9..10).contains(&s));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn pick_covers_the_slice() {
        let mut rng = Rng::seed_from_u64(4);
        let options = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.pick(&options));
        }
        assert_eq!(seen.len(), 3);
    }
}

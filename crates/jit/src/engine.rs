//! The tiered execution engine and its JITBULL integration.
//!
//! Tier ladder (thresholds from the paper's §II):
//!
//! * **interpreter** — 10 cycles/op, from the first invocation;
//! * **baseline** — 4 cycles/op, after 100 invocations (unoptimized
//!   machine code: same bytecode, cheaper dispatch);
//! * **optimizing (Ion)** — 1 cycle/MIR-instruction, after 1500
//!   invocations, produced by the 32-slot pipeline.
//!
//! When a JITBULL guard is installed *and its database is non-empty*, each
//! optimizing compilation is traced, its DNA extracted and compared, and
//! the paper's go / recompile-without-passes / no-Ion policy applied. With
//! an empty database no snapshots are taken at all — the zero-overhead
//! property of §V.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use jitbull::{decide, decide_observed, ComparatorMode, Decision, DnaMemo, ExtractorMode, Guard};
use jitbull_chaos::{FaultInjector, Quarantine};
use jitbull_frontend::parse_program;
use jitbull_mir::build_mir;
use jitbull_telemetry::{Collector, Event, Tier};
use jitbull_vm::bytecode::{FuncId, Module};
use jitbull_vm::interp;
use jitbull_vm::runtime::{ExploitStatus, Outcome, Runtime, BASELINE_COST, INTERP_COST};
use jitbull_vm::{compile_program, Dispatcher, Value, VmError};

use crate::executor::CompiledCode;
use crate::pipeline::{optimize, slot_disableable, OptimizeOptions, N_SLOTS};
use crate::vuln::VulnConfig;

/// Which form the optimizing tier executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Full pipeline (paper Figure 1 steps ⑤–⑦): optimized MIR is
    /// lowered to register-allocated LIR and the LIR executes.
    #[default]
    Lir,
    /// Execute the optimized MIR directly (skips the backend; useful for
    /// differential testing of the LIR layer).
    Mir,
}

/// Optimizing-tier code in whichever backend form was selected.
#[derive(Debug)]
pub enum CompiledTier {
    /// Register-allocated LIR.
    Lir(jitbull_lir::LFunction),
    /// Indexed optimized MIR.
    Mir(CompiledCode),
}

/// Cycle cost charged per bytecode op for a baseline compilation.
const BASELINE_COMPILE_COST: u64 = 15;
/// Cycle cost charged per unit of pipeline work for an Ion compilation.
const ION_COMPILE_COST: u64 = 4;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Invocations before baseline compilation (paper: 100).
    pub baseline_threshold: u64,
    /// Invocations before optimizing compilation (paper: 1500).
    pub ion_threshold: u64,
    /// Whether the JIT is enabled at all (`false` = the paper's *NoJIT*
    /// configuration: everything interprets).
    pub jit_enabled: bool,
    /// Vulnerabilities present in this engine build.
    pub vulns: VulnConfig,
    /// Ablation knob: when `true`, a JITBULL match disables the whole
    /// optimizing JIT for the function instead of recompiling with the
    /// dangerous passes off (the coarse policy the paper argues against).
    pub whole_jit_policy: bool,
    /// Execution fuel (ops) for runs started through [`Engine::run_source`].
    pub fuel: u64,
    /// Pipeline slots to skip unconditionally (debugging / ablations —
    /// e.g. "run everything without GVN"). Mandatory slots still run.
    pub disabled_slots: std::collections::HashSet<usize>,
    /// Optimizing-tier backend (LIR by default).
    pub backend: Backend,
    /// Which Δ-comparator implementation the guard uses (indexed by
    /// default; `Reference` runs the naive normative Algorithm 2 loop).
    pub comparator: ComparatorMode,
    /// Which Δ-extractor implementation the guard uses (incremental by
    /// default; `Reference` runs the naive normative Algorithm 1 walk).
    pub extractor: ExtractorMode,
    /// DNA memo cache handed to the guard. Cloning the config clones the
    /// handle, not the store, so a pool can share one memo across every
    /// worker's engine.
    pub memo: DnaMemo,
    /// Chaos fault injector, threaded into the pipeline and the guard.
    /// Disabled by default (zero overhead, zero cycle-model impact).
    pub faults: FaultInjector,
    /// Compilation watchdog: simulated-cycle budget for one function's
    /// Ion compilation (all recompile rounds plus analysis included). On
    /// expiry the charge is capped at the budget and the function is
    /// pinned to interpreter-only execution. `None` = unbounded.
    pub watchdog_budget: Option<u64>,
    /// Shared strike list: a function whose compilation panics twice
    /// (configurable) is pinned no-go instead of retrying forever. The
    /// pool hands every worker the same list so quarantine survives
    /// across requests.
    pub quarantine: Quarantine,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            baseline_threshold: 100,
            ion_threshold: 1500,
            jit_enabled: true,
            vulns: VulnConfig::none(),
            whole_jit_policy: false,
            fuel: 500_000_000,
            disabled_slots: std::collections::HashSet::new(),
            backend: Backend::default(),
            comparator: ComparatorMode::default(),
            extractor: ExtractorMode::default(),
            memo: DnaMemo::default(),
            faults: FaultInjector::disabled(),
            watchdog_budget: None,
            quarantine: Quarantine::default(),
        }
    }
}

impl EngineConfig {
    /// Lowered thresholds for fast tests (baseline 5, ion 10).
    pub fn fast_test() -> Self {
        EngineConfig {
            baseline_threshold: 5,
            ion_threshold: 10,
            ..Default::default()
        }
    }
}

/// Which tier a function currently executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierStats {
    /// Still interpreting.
    Interpreter,
    /// Baseline-compiled.
    Baseline,
    /// Fully optimized.
    Ion,
    /// Optimized with one or more passes disabled by JITBULL.
    IonPassesDisabled,
    /// Optimizing compilation vetoed by JITBULL (runs baseline forever).
    NoIon,
}

/// Per-function statistics, the raw material of the paper's Figure 4.
#[derive(Debug, Clone)]
pub struct FunctionStats {
    /// Function name.
    pub name: String,
    /// Total invocations.
    pub invocations: u64,
    /// Final tier.
    pub tier: TierStats,
    /// Pipeline slots JITBULL disabled for this function.
    pub disabled_slots: Vec<usize>,
    /// Vulnerabilities (by CVE name) whose incorrect transform fired in
    /// this function's final compilation.
    pub vulns_fired: Vec<String>,
    /// VDC database entries this function's DNA matched: (cve, vdc
    /// function name).
    pub matched: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct FuncState {
    invocations: u64,
    baseline: bool,
    ion: Option<Rc<CompiledTier>>,
    no_ion: bool,
    /// Watchdog verdict: this function runs interpreter-only, no
    /// baseline, no Ion, no further compile attempts.
    pinned_interp: bool,
    disabled_slots: Vec<usize>,
    vulns_fired: Vec<String>,
    matched: Vec<(String, String)>,
}

/// The tiered engine. Implements [`Dispatcher`], so it can be handed to
/// `interp::run_module` directly.
pub struct Engine {
    config: EngineConfig,
    guard: Option<Guard>,
    state: HashMap<FuncId, FuncState>,
    /// Cycles spent in JITBULL analysis (reported separately for the
    /// overhead breakdowns).
    pub analysis_cycles: u64,
    /// Ion compilations that failed without producing code (pass panic,
    /// broken graph, watchdog expiry). The pool's circuit breaker feeds
    /// on this count.
    pub compile_failures: u64,
    /// Watchdog expiries among those failures.
    pub watchdog_expiries: u64,
    collector: Option<Rc<RefCell<dyn Collector>>>,
}

impl Engine {
    /// Creates an engine without JITBULL.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            guard: None,
            state: HashMap::new(),
            analysis_cycles: 0,
            compile_failures: 0,
            watchdog_expiries: 0,
            collector: None,
        }
    }

    /// Creates an engine protected by a JITBULL guard. The guard is
    /// switched to the comparator selected by
    /// [`EngineConfig::comparator`] and the extractor selected by
    /// [`EngineConfig::extractor`] (keyed by the vulnerability-set
    /// fingerprint, backed by [`EngineConfig::memo`]), so the config
    /// knobs are authoritative.
    pub fn with_guard(config: EngineConfig, mut guard: Guard) -> Self {
        guard.set_comparator_mode(config.comparator);
        guard.set_extractor_mode(config.extractor);
        guard.set_dna_memo(config.memo.clone());
        guard.set_extract_context(config.vulns.fingerprint());
        guard.set_fault_injector(config.faults.clone());
        Engine {
            config,
            guard: Some(guard),
            state: HashMap::new(),
            analysis_cycles: 0,
            compile_failures: 0,
            watchdog_expiries: 0,
            collector: None,
        }
    }

    /// Attaches a telemetry collector: subsequent compilations, guard
    /// analyses, policy verdicts, and run outcomes are reported through
    /// it. Without a collector no event is even constructed, and the
    /// pipeline skips its per-slot bookkeeping — observability costs
    /// nothing unless asked for.
    pub fn set_collector(&mut self, collector: Rc<RefCell<dyn Collector>>) {
        self.collector = Some(collector);
    }

    #[inline]
    fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(c) = &self.collector {
            c.borrow_mut().record(make());
        }
    }

    /// The installed guard, if any.
    pub fn guard(&self) -> Option<&Guard> {
        self.guard.as_ref()
    }

    /// Mutable access to the installed guard (e.g. to install or remove
    /// VDC DNA between runs).
    pub fn guard_mut(&mut self) -> Option<&mut Guard> {
        self.guard.as_mut()
    }

    /// Consumes the engine, returning its guard (with the comparator
    /// index and verdict cache it warmed up). The serving pool uses this
    /// to carry a worker's warm guard into the replacement engine after a
    /// database hot-swap instead of re-interning the world from scratch.
    pub fn into_guard(self) -> Option<Guard> {
        self.guard
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Per-function statistics keyed by function id, for the Figure-4
    /// metrics (`Nr_JIT`, `Nr_DisJIT`, `Nr_NoJIT`).
    pub fn function_stats(&self, module: &Module) -> Vec<FunctionStats> {
        let mut stats: Vec<FunctionStats> = self
            .state
            .iter()
            .map(|(fid, st)| FunctionStats {
                name: module.function(*fid).name.clone(),
                invocations: st.invocations,
                tier: if st.pinned_interp {
                    TierStats::Interpreter
                } else if st.no_ion {
                    TierStats::NoIon
                } else if st.ion.is_some() {
                    if st.disabled_slots.is_empty() {
                        TierStats::Ion
                    } else {
                        TierStats::IonPassesDisabled
                    }
                } else if st.baseline {
                    TierStats::Baseline
                } else {
                    TierStats::Interpreter
                },
                disabled_slots: st.disabled_slots.clone(),
                vulns_fired: st.vulns_fired.clone(),
                matched: st.matched.clone(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Count of functions that reached (attempted) the optimizing tier —
    /// the paper's `Nr_JIT`.
    pub fn nr_jit(&self) -> usize {
        self.state
            .values()
            .filter(|s| s.ion.is_some() || s.no_ion)
            .count()
    }

    /// Functions whose compilation had ≥1 pass disabled (`Nr_DisJIT`).
    pub fn nr_disjit(&self) -> usize {
        self.state
            .values()
            .filter(|s| s.ion.is_some() && !s.disabled_slots.is_empty())
            .count()
    }

    /// Functions whose optimizing JIT was vetoed entirely (`Nr_NoJIT`).
    pub fn nr_nojit(&self) -> usize {
        self.state.values().filter(|s| s.no_ion).count()
    }

    /// Watchdog expiry: charge the budget remainder (the watchdog bounds
    /// the compile cost — that is its entire point), pin the function to
    /// interpreter-only, and count the failure.
    fn watchdog_expire(
        &mut self,
        rt: &mut Runtime,
        func: FuncId,
        name: &str,
        matched: Vec<(String, String)>,
        budget: u64,
        spent: u64,
    ) {
        rt.add_cycles(budget.saturating_sub(spent));
        self.compile_failures += 1;
        self.watchdog_expiries += 1;
        self.emit(|| Event::WatchdogExpired {
            function: name.to_owned(),
            budget,
            spent: budget,
        });
        self.emit(|| Event::CompileFailed {
            function: name.to_owned(),
            cause: "watchdog",
        });
        let st = self.state.entry(func).or_default();
        st.no_ion = true;
        st.pinned_interp = true;
        st.matched = matched;
    }

    /// A compilation panicked (chaos-injected or natural). The panic is
    /// contained here: the function earns a quarantine strike and the
    /// engine keeps serving. Below the strike threshold the next hot
    /// invocation may retry; at the threshold the function is pinned
    /// no-go.
    fn compile_panicked(&mut self, func: FuncId, name: &str, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("opaque panic");
        if msg.contains("chaos:") {
            self.emit(|| Event::ChaosInjected {
                site: "pass_run",
                fault: "pass_panic",
            });
        }
        self.compile_failures += 1;
        self.emit(|| Event::CompileFailed {
            function: name.to_owned(),
            cause: "panic",
        });
        let strikes = self.config.quarantine.strike(name);
        if self.config.quarantine.is_quarantined(name) {
            self.emit(|| Event::FunctionQuarantined {
                function: name.to_owned(),
                strikes,
            });
            self.state.entry(func).or_default().no_ion = true;
        }
    }

    fn compile_ion(&mut self, rt: &mut Runtime, module: &Module, func: FuncId) {
        let name = module.function(func).name.clone();
        // Quarantined functions are pinned no-go: their compilations keep
        // blowing up, so we stop feeding them to the pipeline.
        if self.config.quarantine.is_quarantined(&name) {
            self.state.entry(func).or_default().no_ion = true;
            return;
        }
        let jitbull_active = self.guard.as_ref().map(Guard::enabled).unwrap_or(false);
        // JITBULL sits inside OptimizeMIR (paper §V), so every retry is
        // analyzed again: disabling one dangerous pass can unshadow a
        // different buggy transform further down the pipeline, which the
        // next round then catches. The loop reaches a fixpoint because
        // the disabled set only grows.
        let mut disabled: std::collections::HashSet<usize> = self.config.disabled_slots.clone();
        let mut matched: Vec<(String, String)> = Vec::new();
        // Watchdog accounting: cycles charged for this function's whole
        // compilation (every round, analysis included).
        let mut spent = 0u64;
        for _round in 0..=N_SLOTS {
            self.emit(|| Event::CompileStarted {
                function: module.function(func).name.clone(),
                tier: Tier::Ion,
            });
            let Ok(mir) = build_mir(module, func) else {
                self.state.entry(func).or_default().no_ion = true;
                return;
            };
            let options = OptimizeOptions {
                trace: jitbull_active,
                disabled_slots: disabled.clone(),
                stats: self.collector.is_some(),
                faults: self.config.faults.clone(),
            };
            let vulns = &self.config.vulns;
            let result = match catch_unwind(AssertUnwindSafe(|| optimize(mir, vulns, &options))) {
                Ok(result) => result,
                Err(payload) => {
                    self.compile_panicked(func, &name, payload.as_ref());
                    return;
                }
            };
            for &(fault, _slot) in &result.injected {
                self.emit(|| Event::ChaosInjected {
                    site: "pass_run",
                    fault,
                });
            }
            let round_cost = result.work * ION_COMPILE_COST;
            if let Some(budget) = self.config.watchdog_budget {
                if spent.saturating_add(round_cost) > budget {
                    self.watchdog_expire(rt, func, &name, matched, budget, spent);
                    return;
                }
            }
            rt.add_cycles(round_cost);
            spent += round_cost;
            if let Some(c) = &self.collector {
                let mut col = c.borrow_mut();
                for run in &result.slot_runs {
                    col.record(Event::PassApplied {
                        slot: run.slot,
                        name: run.name,
                        instrs_removed: run.instrs_before.saturating_sub(run.instrs_after),
                        instrs_added: run.instrs_after.saturating_sub(run.instrs_before),
                        cycles: run.work * ION_COMPILE_COST,
                    });
                }
            }
            if result.broken.is_some() {
                self.compile_failures += 1;
                self.emit(|| Event::CompileFailed {
                    function: name.clone(),
                    cause: "broken",
                });
                self.state.entry(func).or_default().no_ion = true;
                return;
            }
            let mut fired: Vec<String> = result
                .triggered
                .iter()
                .map(|(c, _)| c.name().to_owned())
                .collect();
            fired.dedup();
            if !jitbull_active {
                self.emit(|| Event::TierPromoted {
                    function: module.function(func).name.clone(),
                    tier: Tier::Ion,
                });
                let tier = Rc::new(self.build_tier(result.mir));
                let st = self.state.entry(func).or_default();
                st.ion = Some(tier);
                st.vulns_fired = fired;
                return;
            }
            let guard = self.guard.as_ref().expect("guard present");
            let analysis = match &self.collector {
                Some(c) => guard.analyze_observed(&result.trace, N_SLOTS, &mut *c.borrow_mut()),
                None => guard.analyze(&result.trace, N_SLOTS),
            };
            if let Some(budget) = self.config.watchdog_budget {
                if spent.saturating_add(analysis.cost_cycles) > budget {
                    self.watchdog_expire(rt, func, &name, matched, budget, spent);
                    return;
                }
            }
            rt.add_cycles(analysis.cost_cycles);
            spent += analysis.cost_cycles;
            self.analysis_cycles += analysis.cost_cycles;
            for (cve, function, _) in &analysis.matches {
                let entry = (cve.clone(), function.clone());
                if !matched.contains(&entry) {
                    matched.push(entry);
                }
            }
            let fresh: Vec<usize> = analysis
                .dangerous
                .iter()
                .copied()
                .filter(|s| !disabled.contains(s))
                .collect();
            let user_disabled: Vec<usize> = self.config.disabled_slots.iter().copied().collect();
            let decision = match &self.collector {
                Some(c) => decide_observed(
                    fresh,
                    slot_disableable,
                    &module.function(func).name,
                    &mut *c.borrow_mut(),
                ),
                None => decide(fresh, slot_disableable),
            };
            match decision {
                Decision::Go => {
                    let jitbull_slots: Vec<usize> = {
                        let mut v: Vec<usize> = disabled
                            .iter()
                            .copied()
                            .filter(|s| !user_disabled.contains(s))
                            .collect();
                        v.sort_unstable();
                        v
                    };
                    if !jitbull_slots.is_empty() && self.config.whole_jit_policy {
                        let st = self.state.entry(func).or_default();
                        st.disabled_slots = jitbull_slots;
                        st.matched = matched;
                        st.no_ion = true;
                        return;
                    }
                    self.emit(|| Event::TierPromoted {
                        function: module.function(func).name.clone(),
                        tier: Tier::Ion,
                    });
                    let tier = Rc::new(self.build_tier(result.mir));
                    let st = self.state.entry(func).or_default();
                    st.disabled_slots = jitbull_slots;
                    st.matched = matched;
                    st.ion = Some(tier);
                    st.vulns_fired = fired;
                    return;
                }
                Decision::Recompile(slots) => {
                    disabled.extend(slots);
                    // loop: recompile and re-analyze
                }
                Decision::NoJit(slots) => {
                    let st = self.state.entry(func).or_default();
                    let mut all: Vec<usize> = disabled
                        .iter()
                        .copied()
                        .filter(|s| !user_disabled.contains(s))
                        .chain(slots)
                        .collect();
                    all.sort_unstable();
                    all.dedup();
                    st.disabled_slots = all;
                    st.matched = matched;
                    st.no_ion = true;
                    return;
                }
            }
        }
        // Could not reach a clean compilation within the round budget:
        // conservative no-Ion fallback.
        let st = self.state.entry(func).or_default();
        st.no_ion = true;
        st.matched = matched;
    }

    fn build_tier(&self, mir: jitbull_mir::MirFunction) -> CompiledTier {
        match self.config.backend {
            Backend::Lir => CompiledTier::Lir(jitbull_lir::compile(&mir)),
            Backend::Mir => CompiledTier::Mir(CompiledCode::new(mir)),
        }
    }

    /// Parses, compiles and runs a source program under this engine
    /// configuration (no JITBULL guard).
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for parse/compile errors; runtime errors are
    /// captured in the outcome's exploit status where applicable, and
    /// otherwise returned.
    pub fn run_source(source: &str, config: EngineConfig) -> Result<EngineOutcome, VmError> {
        let mut engine = Engine::new(config);
        engine.run_source_with(source)
    }

    /// Runs a source program on this engine instance (reusing its guard
    /// and configuration). Crash-class errors terminate the script but
    /// produce an outcome (like a tab crashing), other errors propagate.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for parse/compile/type/fuel errors.
    pub fn run_source_with(&mut self, source: &str) -> Result<EngineOutcome, VmError> {
        let program = parse_program(source).map_err(|e| VmError::Parse(e.to_string()))?;
        let module = compile_program(&program)?;
        let mut rt = Runtime::with_fuel(self.config.fuel);
        let result = interp::run_module(&mut rt, &module, self);
        match result {
            Ok(_) | Err(VmError::Crash(_)) => {}
            Err(e) => return Err(e),
        }
        let outcome = rt.into_outcome();
        self.emit(|| Event::ExploitOutcome {
            clean: !outcome.status.is_compromised(),
            status: match &outcome.status {
                ExploitStatus::Clean => "clean".to_owned(),
                ExploitStatus::Crashed(site) => format!("crash: {site}"),
                ExploitStatus::ShellcodeExecuted => "shellcode-executed".to_owned(),
            },
        });
        Ok(EngineOutcome {
            outcome,
            stats: self.function_stats(&module),
            nr_jit: self.nr_jit(),
            nr_disjit: self.nr_disjit(),
            nr_nojit: self.nr_nojit(),
            analysis_cycles: self.analysis_cycles,
            compile_failures: self.compile_failures,
            watchdog_expiries: self.watchdog_expiries,
        })
    }
}

/// Everything a run produces: VM outcome plus engine statistics.
#[derive(Debug)]
pub struct EngineOutcome {
    /// Printed lines, cycles, exploit status.
    pub outcome: Outcome,
    /// Per-function tier statistics.
    pub stats: Vec<FunctionStats>,
    /// Functions that reached the optimizing tier (`Nr_JIT`).
    pub nr_jit: usize,
    /// Functions with ≥1 disabled pass (`Nr_DisJIT`).
    pub nr_disjit: usize,
    /// Functions with the optimizing JIT vetoed (`Nr_NoJIT`).
    pub nr_nojit: usize,
    /// Cycles spent in JITBULL analysis.
    pub analysis_cycles: u64,
    /// Ion compilations that failed without producing code (panic,
    /// broken graph, watchdog expiry).
    pub compile_failures: u64,
    /// Watchdog expiries among those failures.
    pub watchdog_expiries: u64,
}

impl Dispatcher for Engine {
    fn call(
        &mut self,
        rt: &mut Runtime,
        module: &Module,
        func: FuncId,
        this: Value,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let (tier_code, cost) = {
            let st = self.state.entry(func).or_default();
            st.invocations += 1;
            let inv = st.invocations;
            if self.config.jit_enabled && !st.pinned_interp {
                let mut promoted_baseline = false;
                if !st.baseline && inv >= self.config.baseline_threshold {
                    st.baseline = true;
                    rt.add_cycles(module.function(func).len() as u64 * BASELINE_COMPILE_COST);
                    promoted_baseline = true;
                }
                let needs_ion = st.baseline
                    && st.ion.is_none()
                    && !st.no_ion
                    && inv >= self.config.ion_threshold;
                if promoted_baseline {
                    self.emit(|| Event::CompileStarted {
                        function: module.function(func).name.clone(),
                        tier: Tier::Baseline,
                    });
                    self.emit(|| Event::TierPromoted {
                        function: module.function(func).name.clone(),
                        tier: Tier::Baseline,
                    });
                }
                if needs_ion {
                    self.compile_ion(rt, module, func);
                }
            }
            let st = self.state.entry(func).or_default();
            if st.pinned_interp {
                // Watchdog verdict: interpreter-only, whatever tiers the
                // function had reached before.
                (None, INTERP_COST)
            } else {
                match (&st.ion, st.baseline) {
                    (Some(code), _) => (Some(Rc::clone(code)), 0),
                    (None, true) => (None, BASELINE_COST),
                    (None, false) => (None, INTERP_COST),
                }
            }
        };
        match tier_code {
            Some(code) => match &*code {
                CompiledTier::Lir(lf) => jitbull_lir::run(lf, rt, module, this, &args, self),
                CompiledTier::Mir(mc) => crate::executor::run(mc, rt, module, this, &args, self),
            },
            None => interp::run_function(rt, module, func, this, args, self, cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull::{CompareConfig, DnaDatabase};

    fn printed(src: &str, config: EngineConfig) -> Vec<String> {
        Engine::run_source(src, config)
            .unwrap_or_else(|e| panic!("{e}"))
            .outcome
            .printed
    }

    const SUM_LOOP: &str = "
        function work(a) { var t = 0; for (var i = 0; i < a.length; i++) { t = t + a[i]; } return t; }
        var arr = [1, 2, 3, 4, 5];
        var total = 0;
        for (var r = 0; r < 50; r++) { total = work(arr); }
        print(total);
    ";

    #[test]
    fn tiers_agree_with_interpreter() {
        let interp_only = EngineConfig {
            jit_enabled: false,
            ..EngineConfig::fast_test()
        };
        let jit = EngineConfig::fast_test();
        assert_eq!(printed(SUM_LOOP, interp_only.clone()), vec!["15"]);
        assert_eq!(printed(SUM_LOOP, jit), vec!["15"]);
    }

    #[test]
    fn jit_is_faster_than_interpreter() {
        let no_jit = Engine::run_source(
            SUM_LOOP,
            EngineConfig {
                jit_enabled: false,
                ..EngineConfig::fast_test()
            },
        )
        .unwrap();
        let jit = Engine::run_source(SUM_LOOP, EngineConfig::fast_test()).unwrap();
        assert!(
            jit.outcome.cycles < no_jit.outcome.cycles,
            "jit {} !< nojit {}",
            jit.outcome.cycles,
            no_jit.outcome.cycles
        );
    }

    #[test]
    fn hot_function_reaches_ion() {
        let out = Engine::run_source(SUM_LOOP, EngineConfig::fast_test()).unwrap();
        let work = out.stats.iter().find(|s| s.name == "work").unwrap();
        assert_eq!(work.tier, TierStats::Ion);
        assert_eq!(out.nr_jit, 1);
        assert_eq!(out.nr_disjit, 0);
        assert_eq!(out.nr_nojit, 0);
    }

    #[test]
    fn cold_function_stays_interpreted() {
        let out = Engine::run_source(
            "function once() { return 1; } print(once());",
            EngineConfig::fast_test(),
        )
        .unwrap();
        let once = out.stats.iter().find(|s| s.name == "once").unwrap();
        assert_eq!(once.tier, TierStats::Interpreter);
    }

    #[test]
    fn empty_guard_db_adds_no_analysis_cycles() {
        let guard = Guard::new(DnaDatabase::new(), CompareConfig::default());
        let mut engine = Engine::with_guard(EngineConfig::fast_test(), guard);
        let out = engine.run_source_with(SUM_LOOP).unwrap();
        assert_eq!(out.analysis_cycles, 0);
        assert_eq!(out.outcome.printed, vec!["15"]);
    }

    #[test]
    fn collector_sees_the_run_without_changing_cycles() {
        use jitbull_telemetry::Recorder;
        let plain = Engine::run_source(SUM_LOOP, EngineConfig::fast_test()).unwrap();
        let mut engine = Engine::new(EngineConfig::fast_test());
        let rec = Rc::new(RefCell::new(Recorder::new()));
        engine.set_collector(rec.clone());
        let observed = engine.run_source_with(SUM_LOOP).unwrap();
        // Observation must not perturb the simulated cycle model.
        assert_eq!(observed.outcome.cycles, plain.outcome.cycles);
        let rec = rec.borrow();
        let m = rec.metrics();
        assert_eq!(m.counter("engine.compile.ion"), 1);
        assert_eq!(m.counter("engine.promoted.ion"), 1);
        assert!(m.counter("engine.promoted.baseline") >= 1);
        assert_eq!(m.counter("runs.clean"), 1);
        // Per-slot attribution covers the whole compile charge.
        let slot_cycles: u64 = rec.slot_stats().iter().map(|s| s.cycles).sum();
        assert_eq!(m.counter("pipeline.cycles"), slot_cycles);
        assert!(slot_cycles > 0);
    }

    #[test]
    fn recursion_and_polymorphism_survive_tiering() {
        let src = "
            function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            print(fib(15));
        ";
        assert_eq!(printed(src, EngineConfig::fast_test()), vec!["610"]);
    }

    #[test]
    fn objects_and_method_calls_in_ion() {
        let src = "
            function Counter(start) { this.n = start; this.bump = bump; }
            function bump(k) { this.n = this.n + k; return this.n; }
            var c = new Counter(10);
            var last = 0;
            for (var i = 0; i < 60; i++) { last = c.bump(1); }
            print(last);
        ";
        assert_eq!(printed(src, EngineConfig::fast_test()), vec!["70"]);
    }

    #[test]
    fn string_building_in_ion() {
        let src = "
            function tag(s) { return \"<\" + s + \">\"; }
            var out = \"\";
            for (var i = 0; i < 40; i++) { out = tag(\"x\"); }
            print(out);
        ";
        assert_eq!(printed(src, EngineConfig::fast_test()), vec!["<x>"]);
    }

    #[test]
    fn growth_pattern_matches_interpreter() {
        // Append writes at a[a.length] grow the array on every tier.
        let src = "
            function append(a, v) { a[a.length] = v; return a.length; }
            var a = [];
            var len = 0;
            for (var i = 0; i < 50; i++) { len = append(a, i); }
            print(len); print(a[49]);
        ";
        assert_eq!(printed(src, EngineConfig::fast_test()), vec!["50", "49"]);
        assert_eq!(
            printed(
                src,
                EngineConfig {
                    jit_enabled: false,
                    ..EngineConfig::fast_test()
                }
            ),
            vec!["50", "49"]
        );
    }
}

//! # jitbull-jit — the optimizing JIT engine ("RoninMonkey")
//!
//! The IonMonkey-analogue of the JITBULL reproduction: a tiered execution
//! engine for the minijs VM with a 32-slot optimization pipeline over the
//! SSA MIR of `jitbull-mir`.
//!
//! * [`passes`] — the optimization passes (GVN, LICM, DCE, bounds-check
//!   elimination, type specialization, …). Each pipeline slot is either
//!   *disableable* or *mandatory*, which is what gives JITBULL's policy its
//!   three scenarios.
//! * [`pipeline`] — pass ordering (`OptimizeMIR`), per-slot disabling,
//!   snapshot tracing for the Δ extractor, and vulnerability hooks.
//! * [`vuln`] — faithful models of eight real IonMonkey CVEs as *incorrect
//!   transforms* injected into specific passes under specific IR-pattern
//!   triggers. With a vulnerability enabled, the corresponding exploit
//!   pattern really does lose its `boundscheck`/`unbox` guard and really
//!   does corrupt the simulated heap.
//! * [`executor`] — runs optimized MIR with raw (unchecked) element
//!   accesses wherever guards vouch for them — or were wrongly removed.
//! * [`engine`] — invocation counting, tier promotion (interpreter at
//!   cost 10/op → baseline at 100 calls, cost 4/op → optimizing tier at
//!   1500 calls, cost 1/op), compile-cost charging, JITBULL guard
//!   integration, and the per-function statistics behind the paper's
//!   Figures 4–6.
//!
//! # Examples
//!
//! ```
//! use jitbull_jit::engine::{Engine, EngineConfig};
//!
//! let outcome = Engine::run_source(
//!     "function f(x) { return x * 2; }
//!      var t = 0;
//!      for (var i = 0; i < 3000; i++) { t = f(i); }
//!      print(t);",
//!     EngineConfig::default(),
//! )?;
//! assert_eq!(outcome.outcome.printed, vec!["5998"]);
//! # Ok::<(), jitbull_vm::VmError>(())
//! ```

pub mod engine;
pub mod executor;
pub mod passes;
pub mod pipeline;
pub mod vuln;

pub use engine::{Engine, EngineConfig, EngineOutcome, FunctionStats, TierStats};
pub use pipeline::{optimize, OptimizeOptions, OptimizeResult, PIPELINE};
pub use vuln::{CveId, VulnConfig};

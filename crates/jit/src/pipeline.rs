//! The optimization pipeline (`OptimizeMIR`): 32 slots over the MIR, in an
//! order modeled on IonMonkey's, with per-slot disabling, vulnerability
//! hooks, and before/after snapshot tracing for JITBULL's Δ extractor.

use std::collections::HashSet;

use jitbull_chaos::{FaultInjector, FaultKind, FaultSite};
use jitbull_mir::{MirFunction, PassRecord, PassTrace};

use crate::passes::{self, PassContext};
use crate::vuln::{self, VulnConfig};

/// A pipeline slot: one application of one pass.
#[derive(Clone, Copy)]
pub struct PassSlot {
    /// Pass name (several slots may share one, e.g. GVN runs twice).
    pub name: &'static str,
    /// Whether JITBULL may disable this slot. Mandatory slots keep the
    /// graph executable (renumbering, pruning, coherency, edge splitting).
    pub disableable: bool,
    run: fn(&mut MirFunction, &mut PassContext<'_>),
}

impl std::fmt::Debug for PassSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassSlot")
            .field("name", &self.name)
            .field("disableable", &self.disableable)
            .finish()
    }
}

/// Named indexes of noteworthy slots (used by the vulnerability models and
/// tests).
pub mod slot {
    pub const RENUMBER_1: usize = 0;
    pub const PRUNE_1: usize = 1;
    pub const ELIMINATE_TRIVIAL_PHIS_1: usize = 2;
    pub const TYPE_SPECIALIZATION: usize = 3;
    pub const EAGER_SIMPLIFICATION: usize = 4;
    pub const ALIAS_ANALYSIS: usize = 5;
    pub const GVN_1: usize = 6;
    pub const RENUMBER_2: usize = 7;
    pub const LICM: usize = 8;
    pub const RANGE_ANALYSIS: usize = 9;
    pub const BOUNDS_CHECK_ELIMINATION: usize = 10;
    pub const ELIMINATE_REDUNDANT_CHECKS_1: usize = 11;
    pub const FOLD_TESTS: usize = 12;
    pub const PRUNE_2: usize = 13;
    pub const DCE_1: usize = 14;
    pub const ELIMINATE_DEAD_PHIS_1: usize = 15;
    pub const REORDER_COMMUTATIVE: usize = 16;
    pub const SINK: usize = 17;
    pub const REDUNDANT_LOAD_ELIMINATION: usize = 18;
    pub const GVN_2: usize = 19;
    pub const DCE_2: usize = 20;
    pub const RANGE_ASSERTIONS: usize = 21;
    pub const SPLIT_CRITICAL_EDGES: usize = 22;
    pub const RENUMBER_3: usize = 23;
    pub const EDGE_CASE_ANALYSIS: usize = 24;
    pub const ELIMINATE_REDUNDANT_CHECKS_2: usize = 25;
    pub const FOLD_LINEAR_ARITHMETIC: usize = 26;
    pub const DCE_3: usize = 27;
    pub const ELIMINATE_DEAD_PHIS_2: usize = 28;
    pub const COHERENCY: usize = 29;
    pub const SCHEDULING: usize = 30;
    pub const RENUMBER_FINAL: usize = 31;
}

/// The 32-slot pipeline, in execution order.
pub const PIPELINE: [PassSlot; 32] = [
    PassSlot {
        name: "RenumberInstructions",
        disableable: false,
        run: passes::renumber::renumber,
    },
    PassSlot {
        name: "PruneUnreachable",
        disableable: false,
        run: passes::prune::prune_unreachable,
    },
    PassSlot {
        name: "EliminateTrivialPhis",
        disableable: true,
        run: passes::phis::eliminate_trivial_phis,
    },
    PassSlot {
        name: "TypeSpecialization",
        disableable: true,
        run: passes::typespec::type_specialization,
    },
    PassSlot {
        name: "EagerSimplification",
        disableable: true,
        run: passes::simplify::eager_simplify,
    },
    PassSlot {
        name: "AliasAnalysis",
        disableable: false,
        run: passes::range::alias_analysis,
    },
    PassSlot {
        name: "GVN",
        disableable: true,
        run: passes::gvn::gvn,
    },
    PassSlot {
        name: "RenumberInstructions",
        disableable: false,
        run: passes::renumber::renumber,
    },
    PassSlot {
        name: "LICM",
        disableable: true,
        run: passes::licm::licm,
    },
    PassSlot {
        name: "RangeAnalysis",
        disableable: true,
        run: passes::range::range_analysis,
    },
    PassSlot {
        name: "BoundsCheckElimination",
        disableable: true,
        run: passes::range::bounds_check_elimination,
    },
    PassSlot {
        name: "EliminateRedundantChecks",
        disableable: true,
        run: passes::checks::eliminate_redundant_checks,
    },
    PassSlot {
        name: "FoldTests",
        disableable: true,
        run: passes::simplify::fold_tests,
    },
    PassSlot {
        name: "PruneUnreachable",
        disableable: false,
        run: passes::prune::prune_unreachable,
    },
    PassSlot {
        name: "DCE",
        disableable: true,
        run: passes::dce::dce,
    },
    PassSlot {
        name: "EliminateDeadPhis",
        disableable: true,
        run: passes::phis::eliminate_dead_phis,
    },
    PassSlot {
        name: "ReorderCommutative",
        disableable: true,
        run: passes::reorder::reorder_commutative,
    },
    PassSlot {
        name: "Sink",
        disableable: true,
        run: passes::sink::sink,
    },
    PassSlot {
        name: "RedundantLoadElimination",
        disableable: true,
        run: passes::loadelim::redundant_load_elimination,
    },
    PassSlot {
        name: "GVN",
        disableable: true,
        run: passes::gvn::gvn,
    },
    PassSlot {
        name: "DCE",
        disableable: true,
        run: passes::dce::dce,
    },
    PassSlot {
        name: "RangeAssertions",
        disableable: true,
        run: passes::range::range_assertions,
    },
    PassSlot {
        name: "SplitCriticalEdges",
        disableable: false,
        run: passes::splitedges::split_critical_edges,
    },
    PassSlot {
        name: "RenumberInstructions",
        disableable: false,
        run: passes::renumber::renumber,
    },
    PassSlot {
        name: "EdgeCaseAnalysis",
        disableable: true,
        run: passes::range::edge_case_analysis,
    },
    PassSlot {
        name: "EliminateRedundantChecks",
        disableable: true,
        run: passes::checks::eliminate_redundant_checks,
    },
    PassSlot {
        name: "FoldLinearArithmetic",
        disableable: true,
        run: passes::linear::fold_linear_arithmetic,
    },
    PassSlot {
        name: "DCE",
        disableable: true,
        run: passes::dce::dce,
    },
    PassSlot {
        name: "EliminateDeadPhis",
        disableable: true,
        run: passes::phis::eliminate_dead_phis,
    },
    PassSlot {
        name: "CheckGraphCoherency",
        disableable: false,
        run: passes::range::check_graph_coherency,
    },
    PassSlot {
        name: "InstructionScheduling",
        disableable: true,
        run: passes::reorder::schedule_constants,
    },
    PassSlot {
        name: "RenumberInstructions",
        disableable: false,
        run: passes::renumber::renumber,
    },
];

/// Number of pipeline slots (`n` in the paper's `Δ_1 … Δ_n`; SpiderMonkey
/// has 32 and so do we).
pub const N_SLOTS: usize = PIPELINE.len();

/// Whether a slot may be disabled by JITBULL's policy.
pub fn slot_disableable(slot_index: usize) -> bool {
    PIPELINE[slot_index].disableable
}

/// Options for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct OptimizeOptions {
    /// Slots to skip (JITBULL recompile decision).
    pub disabled_slots: HashSet<usize>,
    /// Capture before/after snapshots per slot (JITBULL enabled).
    pub trace: bool,
    /// Record per-slot instruction counts and work units (telemetry). Off
    /// by default, so unobserved compilations do no extra bookkeeping.
    pub stats: bool,
    /// Chaos injector consulted once per executed slot
    /// ([`FaultSite::PassRun`]). Disabled by default: a single pointer
    /// test per slot, no cycle-model impact.
    pub faults: FaultInjector,
}

/// Measurements for one executed slot, captured when
/// [`OptimizeOptions::stats`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRun {
    /// Pipeline slot index.
    pub slot: usize,
    /// Pass name.
    pub name: &'static str,
    /// IR size entering the slot.
    pub instrs_before: u64,
    /// IR size leaving the slot.
    pub instrs_after: u64,
    /// Work units charged to the slot (its share of
    /// [`OptimizeResult::work`]).
    pub work: u64,
}

/// Result of one pipeline run.
#[derive(Debug)]
pub struct OptimizeResult {
    /// The optimized function (valid unless `broken`).
    pub mir: MirFunction,
    /// Snapshot trace (empty when tracing was off).
    pub trace: PassTrace,
    /// Vulnerability transforms that fired: (cve, slot).
    pub triggered: Vec<(vuln::CveId, usize)>,
    /// Set when the coherency pass found a broken graph — the engine must
    /// abandon this compilation (`OptimizeMIR` returning `FAILURE`).
    pub broken: Option<String>,
    /// Total instructions processed across slots (compile-cost model).
    pub work: u64,
    /// Per-slot measurements (empty when [`OptimizeOptions::stats`] was
    /// off).
    pub slot_runs: Vec<SlotRun>,
    /// Chaos faults injected during this run, as `(kind name, slot)`.
    /// `PassPanic` never appears here — it unwinds instead of returning.
    pub injected: Vec<(&'static str, usize)>,
}

/// Runs the optimization pipeline over `mir`.
pub fn optimize(
    mut mir: MirFunction,
    vulns: &VulnConfig,
    options: &OptimizeOptions,
) -> OptimizeResult {
    let mut cx = PassContext::new(vulns);
    let mut trace = PassTrace {
        function: mir.name.clone(),
        records: Vec::new(),
    };
    let mut work = 0u64;
    let mut slot_runs = Vec::new();
    let mut injected = Vec::new();
    for (index, slot) in PIPELINE.iter().enumerate() {
        if options.disabled_slots.contains(&index) && slot.disableable {
            continue;
        }
        let mut stall_work = 0u64;
        let mut corrupt = false;
        match options.faults.fire(FaultSite::PassRun) {
            Some(FaultKind::PassPanic) => {
                panic!("chaos: injected pass panic at slot {index} ({})", slot.name)
            }
            Some(FaultKind::PassStall { extra_work }) => {
                stall_work = extra_work;
                injected.push(("pass_stall", index));
            }
            Some(FaultKind::IrCorrupt) => {
                corrupt = true;
                injected.push(("ir_corrupt", index));
            }
            _ => {}
        }
        let before = if options.trace {
            Some(mir.snapshot())
        } else {
            None
        };
        let count_before = mir.instr_count() as u64;
        work += count_before + stall_work;
        (slot.run)(&mut mir, &mut cx);
        vuln::apply_vulnerabilities(index, &mut mir, &mut cx);
        if corrupt {
            cx.broken = Some(format!("chaos: injected IR corruption at slot {index}"));
        }
        if options.stats {
            slot_runs.push(SlotRun {
                slot: index,
                name: slot.name,
                instrs_before: count_before,
                instrs_after: mir.instr_count() as u64,
                work: count_before + stall_work,
            });
        }
        if let Some(before) = before {
            trace.records.push(PassRecord {
                slot: index,
                name: slot.name,
                before,
                after: mir.snapshot(),
            });
        }
        if cx.broken.is_some() {
            break;
        }
    }
    OptimizeResult {
        mir,
        trace,
        triggered: cx.triggered,
        broken: cx.broken,
        work,
        slot_runs,
        injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::CveId;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir_of(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn pipeline_has_32_slots_like_spidermonkey() {
        assert_eq!(N_SLOTS, 32);
    }

    #[test]
    fn optimizes_and_stays_valid() {
        let mir = mir_of(
            "function f(a, n) { var t = 0; for (var i = 0; i < n; i++) { t = t + a[i] * 2 + (3 * 4); } return t; }",
            "f",
        );
        let before = mir.instr_count();
        let result = optimize(mir, &VulnConfig::none(), &OptimizeOptions::default());
        assert!(result.broken.is_none());
        assert_eq!(result.mir.validate(), Ok(()));
        assert!(
            result.mir.instr_count() <= before + 4,
            "optimization should not bloat much"
        );
        assert!(result.triggered.is_empty());
        assert!(result.trace.records.is_empty());
        assert!(result.work > 0);
    }

    #[test]
    fn tracing_captures_every_executed_slot() {
        let mir = mir_of("function f(a, i) { return a[i] + a[i]; }", "f");
        let result = optimize(
            mir,
            &VulnConfig::none(),
            &OptimizeOptions {
                trace: true,
                ..Default::default()
            },
        );
        assert_eq!(result.trace.records.len(), N_SLOTS);
        // GVN's record must show a shrinking IR (the duplicate chains merge).
        let gvn = &result.trace.records[slot::GVN_1];
        assert!(gvn.after.len() < gvn.before.len());
    }

    #[test]
    fn disabled_slots_are_skipped() {
        let mir = mir_of("function f(a, i) { return a[i] + a[i]; }", "f");
        let mut options = OptimizeOptions {
            trace: true,
            ..Default::default()
        };
        options.disabled_slots.insert(slot::GVN_1);
        options.disabled_slots.insert(slot::GVN_2);
        let result = optimize(mir, &VulnConfig::none(), &options);
        assert_eq!(result.trace.records.len(), N_SLOTS - 2);
        assert!(result
            .trace
            .records
            .iter()
            .all(|r| r.slot != slot::GVN_1 && r.slot != slot::GVN_2));
    }

    #[test]
    fn mandatory_slots_cannot_be_skipped() {
        let mir = mir_of("function f(a) { return a + 1; }", "f");
        let mut options = OptimizeOptions::default();
        options.disabled_slots.insert(slot::RENUMBER_FINAL);
        let result = optimize(mir, &VulnConfig::none(), &options);
        assert!(result.broken.is_none());
        // Final renumber still ran: ids are dense.
        let mut expected = 0;
        for b in &result.mir.blocks {
            for i in b.iter_all() {
                assert_eq!(i.id.0, expected);
                expected += 1;
            }
        }
    }

    #[test]
    fn vulnerability_fires_in_its_slot_and_is_visible_in_trace() {
        let mir = mir_of(
            "function pwn(a, v) { a.length = 4; a[20] = v; return 0; }",
            "pwn",
        );
        let result = optimize(
            mir,
            &VulnConfig::with([CveId::Cve2019_17026]),
            &OptimizeOptions {
                trace: true,
                ..Default::default()
            },
        );
        assert!(result
            .triggered
            .contains(&(CveId::Cve2019_17026, slot::GVN_1)));
        // No boundscheck survives.
        assert!(!result
            .mir
            .blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .any(|i| matches!(i.op, jitbull_mir::MOpcode::BoundsCheck)));
        // And the GVN trace record shows the removal.
        let gvn = &result.trace.records[slot::GVN_1];
        let before_checks = gvn
            .before
            .instrs
            .iter()
            .filter(|i| &*i.label == "boundscheck")
            .count();
        let after_checks = gvn
            .after
            .instrs
            .iter()
            .filter(|i| &*i.label == "boundscheck")
            .count();
        assert!(before_checks > after_checks);
    }

    #[test]
    fn disabling_the_buggy_slot_neutralizes_the_vulnerability() {
        let mir = mir_of(
            "function pwn(a, v) { a.length = 4; a[20] = v; return 0; }",
            "pwn",
        );
        let mut options = OptimizeOptions::default();
        options.disabled_slots.insert(slot::GVN_1);
        let result = optimize(mir, &VulnConfig::with([CveId::Cve2019_17026]), &options);
        assert!(result.triggered.is_empty());
        assert!(result
            .mir
            .blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .any(|i| matches!(i.op, jitbull_mir::MOpcode::BoundsCheck)));
    }

    #[test]
    fn stats_capture_per_slot_runs() {
        let mir = mir_of("function f(a, i) { return a[i] + a[i]; }", "f");
        let result = optimize(
            mir,
            &VulnConfig::none(),
            &OptimizeOptions {
                stats: true,
                ..Default::default()
            },
        );
        assert_eq!(result.slot_runs.len(), N_SLOTS);
        let total: u64 = result.slot_runs.iter().map(|r| r.work).sum();
        assert_eq!(total, result.work, "slot work must partition total work");
        // GVN shrinks the duplicated load chain.
        let gvn = &result.slot_runs[slot::GVN_1];
        assert_eq!(gvn.name, "GVN");
        assert!(gvn.instrs_after < gvn.instrs_before);
        // Stats off: no bookkeeping at all.
        let again = optimize(result.mir, &VulnConfig::none(), &OptimizeOptions::default());
        assert!(again.slot_runs.is_empty());
    }

    #[test]
    fn chaos_stall_inflates_work_deterministically() {
        use jitbull_chaos::FaultPlan;
        let base = optimize(
            mir_of("function f(a, i) { return a[i] + a[i]; }", "f"),
            &VulnConfig::none(),
            &OptimizeOptions::default(),
        );
        let faults = FaultInjector::from_plan(FaultPlan::new(1).script(
            FaultSite::PassRun,
            FaultKind::PassStall { extra_work: 10_000 },
            3,
            1,
        ));
        let stalled = optimize(
            mir_of("function f(a, i) { return a[i] + a[i]; }", "f"),
            &VulnConfig::none(),
            &OptimizeOptions {
                faults,
                ..Default::default()
            },
        );
        assert_eq!(stalled.work, base.work + 10_000);
        assert_eq!(stalled.injected, vec![("pass_stall", 3)]);
        assert!(stalled.broken.is_none());
    }

    #[test]
    fn chaos_corruption_breaks_the_graph_at_the_faulted_slot() {
        let faults = FaultInjector::from_plan(jitbull_chaos::FaultPlan::new(2).script(
            FaultSite::PassRun,
            FaultKind::IrCorrupt,
            5,
            1,
        ));
        let result = optimize(
            mir_of("function f(a, i) { return a[i] + a[i]; }", "f"),
            &VulnConfig::none(),
            &OptimizeOptions {
                faults,
                ..Default::default()
            },
        );
        let broken = result.broken.expect("corruption must break the graph");
        assert!(broken.contains("chaos"), "{broken}");
        assert_eq!(result.injected, vec![("ir_corrupt", 5)]);
    }

    #[test]
    fn chaos_panic_unwinds_out_of_the_pipeline() {
        let faults = FaultInjector::from_plan(jitbull_chaos::FaultPlan::new(3).script(
            FaultSite::PassRun,
            FaultKind::PassPanic,
            0,
            1,
        ));
        let mir = mir_of("function f(a) { return a + 1; }", "f");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            optimize(
                mir,
                &VulnConfig::none(),
                &OptimizeOptions {
                    faults,
                    ..Default::default()
                },
            )
        }))
        .expect_err("scripted panic must unwind");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("chaos: injected pass panic"), "{msg}");
    }

    #[test]
    fn disabled_injector_changes_nothing() {
        let base = optimize(
            mir_of("function f(a, b) { return (a + b) * (a + b); }", "f"),
            &VulnConfig::none(),
            &OptimizeOptions::default(),
        );
        // An armed injector whose plan never matches must be
        // indistinguishable too (the no-fault-overhead guarantee).
        let armed_idle = FaultInjector::from_plan(jitbull_chaos::FaultPlan::new(9).script(
            FaultSite::PassRun,
            FaultKind::PassPanic,
            u64::MAX,
            0,
        ));
        let idle = optimize(
            mir_of("function f(a, b) { return (a + b) * (a + b); }", "f"),
            &VulnConfig::none(),
            &OptimizeOptions {
                faults: armed_idle,
                ..Default::default()
            },
        );
        assert_eq!(idle.work, base.work);
        assert!(idle.injected.is_empty());
        assert_eq!(idle.mir.instr_count(), base.mir.instr_count());
    }

    #[test]
    fn idempotent_second_run_changes_little() {
        let mir = mir_of("function f(a, b) { return (a + b) * (a + b); }", "f");
        let r1 = optimize(mir, &VulnConfig::none(), &OptimizeOptions::default());
        let count1 = r1.mir.instr_count();
        let r2 = optimize(r1.mir, &VulnConfig::none(), &OptimizeOptions::default());
        assert_eq!(r2.mir.instr_count(), count1);
    }
}

//! Sinking (IonMonkey `Sink`): moves pure computations into the single
//! block that uses them, shortening live ranges and keeping work off paths
//! that never need it.

use std::collections::HashMap;

use jitbull_mir::{BlockId, InstrId, MirFunction};

use super::PassContext;

/// Sinks movable instructions whose uses all live in one other block
/// (and none of which are phis) to just before their first use.
pub fn sink(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    // use sites: id -> set of (block, is_phi)
    let mut use_blocks: HashMap<InstrId, Vec<(BlockId, bool)>> = HashMap::new();
    for b in f.block_ids() {
        let block = f.block(b);
        for phi in &block.phis {
            for o in &phi.operands {
                use_blocks.entry(*o).or_default().push((b, true));
            }
        }
        for i in &block.instrs {
            for o in &i.operands {
                use_blocks.entry(*o).or_default().push((b, false));
            }
        }
    }
    // Candidate moves: (def block, instr id, target block).
    let mut moves: Vec<(BlockId, InstrId, BlockId)> = Vec::new();
    for b in f.block_ids() {
        for i in &f.block(b).instrs {
            if !i.op.is_movable() {
                continue;
            }
            let Some(uses) = use_blocks.get(&i.id) else {
                continue;
            };
            if uses.iter().any(|(_, is_phi)| *is_phi) {
                continue;
            }
            let target = uses[0].0;
            if target == b || !uses.iter().all(|(ub, _)| *ub == target) {
                continue;
            }
            moves.push((b, i.id, target));
        }
    }
    // Apply moves one at a time; skip an instruction if a prior move
    // already moved one of its operand definitions after it (re-checking
    // keeps this simple and safe).
    for (from, id, to) in moves {
        let from_block = f.block_mut(from);
        let Some(pos) = from_block.instrs.iter().position(|i| i.id == id) else {
            continue;
        };
        let instr = from_block.instrs.remove(pos);
        let target = f.block_mut(to);
        let insert_at = target
            .instrs
            .iter()
            .position(|i| i.operands.contains(&id))
            .unwrap_or(0);
        target.instrs.insert(insert_at, instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::{build_mir, MOpcode};
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn sinks_into_conditional_user_block() {
        // a * b is only needed on the taken path.
        let mut f = mir(
            "function f(a, b, c) { var x = a * b; if (c) { return x; } return 0; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let mul_block_before = f
            .block_ids()
            .find(|b| {
                f.block(*b)
                    .instrs
                    .iter()
                    .any(|i| matches!(i.op, MOpcode::Mul))
            })
            .unwrap();
        sink(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let mul_block_after = f
            .block_ids()
            .find(|b| {
                f.block(*b)
                    .instrs
                    .iter()
                    .any(|i| matches!(i.op, MOpcode::Mul))
            })
            .unwrap();
        assert_ne!(mul_block_before, mul_block_after, "{f}");
    }

    #[test]
    fn leaves_multi_block_uses_alone() {
        let mut f = mir(
            "function f(a, b, c) { var x = a * b; if (c) { return x; } return x + 1; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = f.to_string();
        sink(&mut f, &mut cx);
        assert_eq!(before, f.to_string());
    }

    #[test]
    fn never_sinks_toward_phi_uses() {
        let mut f = mir(
            "function f(c, a) { var x = a * 2; var y; if (c) { y = x; } else { y = 0; } return y; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        sink(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
    }
}

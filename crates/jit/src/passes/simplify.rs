//! Eager simplification: constant folding, safe algebraic identities, and
//! test folding (IonMonkey `FoldConstants` / `FoldTests`).

use std::collections::{HashMap, HashSet};

use jitbull_frontend::ast::{BinOp, UnOp};
use jitbull_mir::{CmpOp, ConstVal, InstrId, Instruction, MOpcode, MirFunction};
use jitbull_vm::interp::{eval_binop, eval_unop};
use jitbull_vm::Value;

use super::util::{def_instrs, remove_instrs, replace_uses_map};
use super::PassContext;

fn const_value(c: &ConstVal) -> Option<Value> {
    Some(match c {
        ConstVal::Number(n) => Value::Number(*n),
        ConstVal::Str(s) => Value::Str(s.clone()),
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::Undefined => Value::Undefined,
        ConstVal::Null => Value::Null,
        ConstVal::Func(_) => return None,
    })
}

fn value_const(v: &Value) -> Option<ConstVal> {
    Some(match v {
        Value::Number(n) => ConstVal::Number(*n),
        Value::Str(s) => ConstVal::Str(s.clone()),
        Value::Bool(b) => ConstVal::Bool(*b),
        Value::Undefined => ConstVal::Undefined,
        Value::Null => ConstVal::Null,
        _ => return None,
    })
}

fn binop_of(op: &MOpcode) -> Option<BinOp> {
    Some(match op {
        MOpcode::Add => BinOp::Add,
        MOpcode::Sub => BinOp::Sub,
        MOpcode::Mul => BinOp::Mul,
        MOpcode::Div => BinOp::Div,
        MOpcode::Mod => BinOp::Mod,
        MOpcode::BitAnd => BinOp::BitAnd,
        MOpcode::BitOr => BinOp::BitOr,
        MOpcode::BitXor => BinOp::BitXor,
        MOpcode::Lsh => BinOp::Shl,
        MOpcode::Rsh => BinOp::Shr,
        MOpcode::Ursh => BinOp::Ushr,
        MOpcode::Compare(c) => match c {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::Ne => BinOp::Ne,
            CmpOp::StrictEq => BinOp::StrictEq,
            CmpOp::StrictNe => BinOp::StrictNe,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::Le => BinOp::Le,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::Ge => BinOp::Ge,
        },
        _ => return None,
    })
}

fn unop_of(op: &MOpcode) -> Option<UnOp> {
    Some(match op {
        MOpcode::Neg => UnOp::Neg,
        MOpcode::Not => UnOp::Not,
        MOpcode::BitNot => UnOp::BitNot,
        MOpcode::ToNumber => UnOp::Plus,
        MOpcode::TypeOf => UnOp::Typeof,
        _ => return None,
    })
}

/// Whether the instruction always produces an int32-coerced number.
fn produces_int32(op: &MOpcode) -> bool {
    matches!(
        op,
        MOpcode::BitAnd
            | MOpcode::BitOr
            | MOpcode::BitXor
            | MOpcode::Lsh
            | MOpcode::Rsh
            | MOpcode::BitNot
    )
}

/// Folds constant expressions and safe algebraic identities, to a
/// fixpoint. Folding rewrites the instruction *in place* into a
/// `constant`, preserving its id, so uses need no updating; identities use
/// use-replacement.
pub fn eager_simplify(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    loop {
        let consts: HashMap<InstrId, ConstVal> = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter_map(|i| match &i.op {
                MOpcode::Constant(c) => Some((i.id, c.clone())),
                _ => None,
            })
            .collect();
        let int32_defs: HashSet<InstrId> = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| produces_int32(&i.op))
            .map(|i| i.id)
            .collect();
        let mut folded = false;
        let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
        for b in &mut f.blocks {
            for i in &mut b.instrs {
                // Constant folding through the real VM semantics.
                if let Some(bin) = binop_of(&i.op) {
                    if let (Some(ca), Some(cb)) = (
                        i.operands.first().and_then(|o| consts.get(o)),
                        i.operands.get(1).and_then(|o| consts.get(o)),
                    ) {
                        if let (Some(va), Some(vb)) = (const_value(ca), const_value(cb)) {
                            let result = eval_binop(bin, &va, &vb);
                            if let Some(c) = value_const(&result) {
                                i.op = MOpcode::Constant(c);
                                i.operands.clear();
                                folded = true;
                                continue;
                            }
                        }
                    }
                    // `x | 0` where x is already int32-producing.
                    if matches!(i.op, MOpcode::BitOr) {
                        if let (Some(&x), Some(c)) = (
                            i.operands.first(),
                            i.operands.get(1).and_then(|o| consts.get(o)),
                        ) {
                            if matches!(c, ConstVal::Number(n) if *n == 0.0)
                                && int32_defs.contains(&x)
                            {
                                replacements.insert(i.id, x);
                                continue;
                            }
                        }
                    }
                }
                if let Some(un) = unop_of(&i.op) {
                    if let Some(ca) = i.operands.first().and_then(|o| consts.get(o)) {
                        if let Some(va) = const_value(ca) {
                            let result = eval_unop(un, &va);
                            if let Some(c) = value_const(&result) {
                                i.op = MOpcode::Constant(c);
                                i.operands.clear();
                                folded = true;
                                continue;
                            }
                        }
                    }
                }
                // not(not(x)) used only in tests is folded by fold_tests;
                // neg(neg(x)) is exactly ToNumber(x) — fold to that.
                if matches!(i.op, MOpcode::Neg) {
                    // handled via constant folding only; general neg(neg)
                    // would need def lookup each iteration — cheap enough:
                }
            }
        }
        if !replacements.is_empty() {
            let dead: HashSet<InstrId> = replacements.keys().copied().collect();
            replace_uses_map(f, &replacements);
            remove_instrs(f, &dead);
            folded = true;
        }
        if !folded {
            return;
        }
    }
}

/// Folds `test` terminators: a constant condition turns the test into a
/// `goto`; a `not(x)` condition swaps the branch targets. Phi inputs of
/// the abandoned successor are cleaned up.
pub fn fold_tests(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let defs = def_instrs(f);
    // (block index, taken target, abandoned target) edits.
    let mut edits: Vec<(usize, Instruction)> = Vec::new();
    let mut abandoned: Vec<(jitbull_mir::BlockId, jitbull_mir::BlockId)> = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let Some(t) = b.terminator() else { continue };
        let MOpcode::Test {
            then_block,
            else_block,
        } = t.op
        else {
            continue;
        };
        let cond = t.operands[0];
        match defs.get(&cond).map(|d| &d.op) {
            Some(MOpcode::Constant(c)) => {
                let truthy = match c {
                    ConstVal::Number(n) => *n != 0.0 && !n.is_nan(),
                    ConstVal::Str(s) => !s.is_empty(),
                    ConstVal::Bool(b) => *b,
                    ConstVal::Undefined | ConstVal::Null => false,
                    ConstVal::Func(_) => true,
                };
                let (taken, dropped) = if truthy {
                    (then_block, else_block)
                } else {
                    (else_block, then_block)
                };
                if taken != dropped {
                    edits.push((bi, Instruction::new(t.id, MOpcode::Goto(taken), vec![])));
                    abandoned.push((jitbull_mir::BlockId(bi as u32), dropped));
                }
            }
            Some(MOpcode::Not) => {
                let inner = defs[&cond].operands[0];
                edits.push((
                    bi,
                    Instruction::new(
                        t.id,
                        MOpcode::Test {
                            then_block: else_block,
                            else_block: then_block,
                        },
                        vec![inner],
                    ),
                ));
            }
            _ => {}
        }
    }
    for (bi, new_term) in edits {
        *f.blocks[bi].instrs.last_mut().expect("terminator") = new_term;
    }
    // Remove phi inputs flowing along abandoned edges.
    for (from, to) in abandoned {
        let b = f.block_mut(to);
        while let Some(pos) = b.phi_preds.iter().position(|p| *p == from) {
            b.phi_preds.remove(pos);
            for phi in &mut b.phis {
                phi.operands.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn count(f: &MirFunction, pred: impl Fn(&MOpcode) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| pred(&i.op))
            .count()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut f = mir("function f() { return 2 * 3 + 4; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        eager_simplify(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Add | MOpcode::Mul)), 0);
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .any(|i| matches!(&i.op, MOpcode::Constant(ConstVal::Number(n)) if *n == 10.0)));
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn folds_string_concat_and_typeof() {
        let mut f = mir("function f() { return typeof (\"a\" + \"b\"); }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        eager_simplify(&mut f, &mut cx);
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .any(|i| matches!(&i.op, MOpcode::Constant(ConstVal::Str(s)) if &**s == "string")));
    }

    #[test]
    fn or_zero_identity_only_for_int32_producers() {
        let mut f = mir("function f(x) { return (x & 255) | 0; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        eager_simplify(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::BitOr)), 0, "{f}");
        // But plain `x | 0` must stay (x may be a string).
        let mut g = mir("function f(x) { return x | 0; }", "f");
        eager_simplify(&mut g, &mut cx);
        assert_eq!(count(&g, |o| matches!(o, MOpcode::BitOr)), 1);
    }

    #[test]
    fn fold_tests_on_constant_condition() {
        let mut f = mir("function f() { if (true) { return 1; } return 2; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        eager_simplify(&mut f, &mut cx);
        fold_tests(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Test { .. })), 0, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn fold_tests_swaps_on_not() {
        let mut f = mir("function f(c) { if (!c) { return 1; } return 2; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        fold_tests(&mut f, &mut cx);
        // The test's condition is now the raw parameter.
        let test = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find(|i| matches!(i.op, MOpcode::Test { .. }))
            .unwrap();
        let defs = def_instrs(&f);
        assert!(matches!(defs[&test.operands[0]].op, MOpcode::Parameter(0)));
        assert_eq!(f.validate(), Ok(()));
    }
}

//! Type specialization: inserts `unbox:number` guards in front of
//! arithmetic consumers of untyped definitions (parameters, property and
//! element loads, calls), mirroring how IonMonkey specializes on type
//! feedback. The guards are value-transparent; the executor uses them to
//! fall back to generic semantics when a speculation misses.

use std::collections::HashSet;

use jitbull_mir::{InstrId, Instruction, MOpcode, MirFunction, TypeHint};

use super::util::def_instrs;
use super::PassContext;

fn is_untyped_source(op: &MOpcode) -> bool {
    matches!(
        op,
        MOpcode::Parameter(_)
            | MOpcode::LoadProperty(_)
            | MOpcode::LoadGlobal(_)
            | MOpcode::Call(_)
            | MOpcode::CallMethod(_)
    )
}

fn wants_number_operands(op: &MOpcode) -> bool {
    matches!(
        op,
        MOpcode::Sub | MOpcode::Mul | MOpcode::Div | MOpcode::Mod | MOpcode::Neg
    )
}

/// Inserts `unbox:number` before numeric consumers of untyped values (one
/// unbox per consumer operand, placed immediately before the consumer; GVN
/// merges duplicates later).
pub fn type_specialization(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let defs = def_instrs(f);
    let untyped: HashSet<InstrId> = defs
        .iter()
        .filter(|(_, i)| is_untyped_source(&i.op))
        .map(|(id, _)| *id)
        .collect();
    for bi in 0..f.blocks.len() {
        let mut pos = 0;
        while pos < f.blocks[bi].instrs.len() {
            let needs: Vec<usize> = {
                let i = &f.blocks[bi].instrs[pos];
                if wants_number_operands(&i.op) {
                    i.operands
                        .iter()
                        .enumerate()
                        .filter(|(_, o)| untyped.contains(o))
                        .map(|(k, _)| k)
                        .collect()
                } else {
                    Vec::new()
                }
            };
            for k in needs {
                let operand = f.blocks[bi].instrs[pos].operands[k];
                let id = f.fresh_id();
                f.blocks[bi].instrs.insert(
                    pos,
                    Instruction::new(id, MOpcode::Unbox(TypeHint::Number), vec![operand]),
                );
                pos += 1;
                f.blocks[bi].instrs[pos].operands[k] = id;
            }
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    #[test]
    fn inserts_number_guards_for_parameters() {
        let p = parse_program("function f(a, b) { return a * b - 1; }").unwrap();
        let m = compile_program(&p).unwrap();
        let mut f = build_mir(&m, m.function_id("f").unwrap()).unwrap();
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        type_specialization(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let unboxes = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i.op, MOpcode::Unbox(TypeHint::Number)))
            .count();
        assert_eq!(unboxes, 2, "{f}"); // a and b feeding the mul
    }

    #[test]
    fn add_is_left_generic() {
        // Add may be string concatenation; it must not get number guards.
        let p = parse_program("function f(a, b) { return a + b; }").unwrap();
        let m = compile_program(&p).unwrap();
        let mut f = build_mir(&m, m.function_id("f").unwrap()).unwrap();
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        type_specialization(&mut f, &mut cx);
        let unboxes = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i.op, MOpcode::Unbox(TypeHint::Number)))
            .count();
        assert_eq!(unboxes, 0);
    }
}

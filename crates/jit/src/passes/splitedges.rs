//! Critical-edge splitting (IonMonkey `SplitCriticalEdges`). Mandatory:
//! register allocators require no edge to go from a multi-successor block
//! straight into a multi-predecessor block.

use jitbull_mir::{Block, BlockId, Instruction, MOpcode, MirFunction};

use super::PassContext;

/// Splits every critical edge by inserting an empty forwarding block.
pub fn split_critical_edges(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let preds = f.predecessors();
    let mut edits: Vec<(BlockId, usize, BlockId)> = Vec::new(); // (from, succ idx, to)
    for b in f.block_ids() {
        let succs = f.block(b).successors();
        if succs.len() < 2 {
            continue;
        }
        for (si, s) in succs.iter().enumerate() {
            if preds[s.0 as usize].len() >= 2 {
                edits.push((b, si, *s));
            }
        }
    }
    for (from, si, to) in edits {
        let new_id = BlockId(f.blocks.len() as u32);
        let gid = f.fresh_id();
        f.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![Instruction::new(gid, MOpcode::Goto(to), vec![])],
        });
        // Redirect the terminator's si-th successor.
        let term = f
            .block_mut(from)
            .instrs
            .last_mut()
            .expect("terminator exists");
        match &mut term.op {
            MOpcode::Test {
                then_block,
                else_block,
            } => {
                if si == 0 {
                    *then_block = new_id;
                } else {
                    *else_block = new_id;
                }
            }
            MOpcode::Goto(t) => *t = new_id,
            _ => unreachable!("multi-successor block must end in test"),
        }
        // Update the target's phi predecessor list. Only the first
        // matching entry: a test with both arms on the same target
        // contributes two entries, one per edit.
        if let Some(p) = f.block_mut(to).phi_preds.iter_mut().find(|p| **p == from) {
            *p = new_id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    #[test]
    fn splits_if_without_else_join_edge() {
        // `if` without `else`: the branch block has two successors and the
        // join has two predecessors — the fall-through edge is critical.
        let p = parse_program("function f(c) { var x = 0; if (c) { x = 1; } return x; }").unwrap();
        let m = compile_program(&p).unwrap();
        let mut f = build_mir(&m, m.function_id("f").unwrap()).unwrap();
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = f.block_count();
        split_critical_edges(&mut f, &mut cx);
        assert!(f.block_count() > before, "{f}");
        assert_eq!(f.validate(), Ok(()));
        // No critical edges remain.
        let preds = f.predecessors();
        for b in f.block_ids() {
            let succs = f.block(b).successors();
            if succs.len() >= 2 {
                for s in succs {
                    assert!(
                        preds[s.0 as usize].len() < 2,
                        "critical edge {b} -> {s} remains\n{f}"
                    );
                }
            }
        }
    }

    #[test]
    fn straight_line_untouched() {
        let p = parse_program("function f(a) { return a + 1; }").unwrap();
        let m = compile_program(&p).unwrap();
        let mut f = build_mir(&m, m.function_id("f").unwrap()).unwrap();
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = f.block_count();
        split_critical_edges(&mut f, &mut cx);
        assert_eq!(f.block_count(), before);
    }
}

//! Unreachable-block pruning (IonMonkey `PruneUnusedBranches` /
//! `RemoveUnmarkedBlocks`). Mandatory: later passes assume every block is
//! reachable.

use std::collections::HashMap;

use jitbull_mir::{BlockId, MOpcode, MirFunction};

use super::PassContext;

/// Removes blocks unreachable from the entry, remapping block ids in
/// terminators and phi predecessor lists, and dropping phi operands that
/// flowed in from removed predecessors.
pub fn prune_unreachable(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let n = f.block_count();
    let mut reachable = vec![false; n];
    let mut work = vec![BlockId(0)];
    while let Some(b) = work.pop() {
        if reachable[b.0 as usize] {
            continue;
        }
        reachable[b.0 as usize] = true;
        for s in f.block(b).successors() {
            work.push(s);
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    // Old id -> new id for surviving blocks.
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut next = 0u32;
    for (i, ok) in reachable.iter().enumerate() {
        if *ok {
            remap.insert(BlockId(i as u32), BlockId(next));
            next += 1;
        }
    }
    let mut old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.drain(..).enumerate() {
        if !reachable[i] {
            continue;
        }
        // Drop phi inputs from removed predecessors.
        let keep: Vec<bool> = b
            .phi_preds
            .iter()
            .map(|p| reachable[p.0 as usize])
            .collect();
        if keep.iter().any(|k| !k) {
            for phi in &mut b.phis {
                let mut slot = 0;
                phi.operands.retain(|_| {
                    let k = keep[slot];
                    slot += 1;
                    k
                });
            }
            let mut slot = 0;
            b.phi_preds.retain(|_| {
                let k = keep[slot];
                slot += 1;
                k
            });
        }
        for p in &mut b.phi_preds {
            *p = remap[p];
        }
        if let Some(t) = b.instrs.last_mut() {
            match &mut t.op {
                MOpcode::Goto(x) => *x = remap[x],
                MOpcode::Test {
                    then_block,
                    else_block,
                } => {
                    *then_block = remap[then_block];
                    *else_block = remap[else_block];
                }
                _ => {}
            }
        }
        f.blocks.push(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_mir::{Block, ConstVal, Instruction};

    #[test]
    fn removes_orphan_block_and_remaps() {
        let mut f = MirFunction::new("t", jitbull_vm::bytecode::FuncId(0));
        // block0 -> block2; block1 is unreachable.
        let goto_id = f.fresh_id();
        f.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![Instruction::new(goto_id, MOpcode::Goto(BlockId(2)), vec![])],
        });
        let dead_c = f.fresh_id();
        let dead_r = f.fresh_id();
        f.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![],
            instrs: vec![
                Instruction::new(dead_c, MOpcode::Constant(ConstVal::Null), vec![]),
                Instruction::new(dead_r, MOpcode::Return, vec![dead_c]),
            ],
        });
        let c = f.fresh_id();
        let r = f.fresh_id();
        f.blocks.push(Block {
            phis: vec![],
            phi_preds: vec![BlockId(0), BlockId(1)],
            instrs: vec![
                Instruction::new(c, MOpcode::Constant(ConstVal::Undefined), vec![]),
                Instruction::new(r, MOpcode::Return, vec![c]),
            ],
        });
        // Give the target block a phi fed by both preds.
        let phi = f.fresh_id();
        f.blocks[2]
            .phis
            .push(Instruction::new(phi, MOpcode::Phi, vec![c, dead_c]));
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        prune_unreachable(&mut f, &mut cx);
        assert_eq!(f.block_count(), 2);
        // Phi lost the input from the removed predecessor.
        assert_eq!(f.blocks[1].phis[0].operands.len(), 1);
        assert_eq!(f.blocks[1].phi_preds, vec![BlockId(0)]);
        assert_eq!(f.validate(), Ok(()));
    }
}

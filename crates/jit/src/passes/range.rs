//! Range analysis and bounds-check elimination (IonMonkey
//! `RangeAnalysis` / `EliminateRedundantBoundsChecks`), plus the
//! annotation-only slots (`EdgeCaseAnalysis`, `RangeAssertions`,
//! `AliasAnalysis`) that exist in the pipeline but do not transform IR.

use std::collections::{HashMap, HashSet};

use jitbull_mir::{ConstVal, InstrId, MOpcode, MirFunction};

use super::util::{def_instrs, remove_instrs, replace_uses_map};
use super::{PassContext, Range};

/// Computes conservative value ranges and stores them in the context.
pub fn range_analysis(f: &mut MirFunction, cx: &mut PassContext<'_>) {
    cx.ranges.clear();
    // One forward sweep in block order; misses loop-carried refinement by
    // design (conservative).
    for b in &f.blocks {
        for i in b.iter_all() {
            let r = match &i.op {
                MOpcode::Constant(ConstVal::Number(n)) if n.fract() == 0.0 && n.is_finite() => {
                    Some(Range { lo: *n, hi: *n })
                }
                MOpcode::Ursh => Some(Range {
                    lo: 0.0,
                    hi: u32::MAX as f64,
                }),
                MOpcode::BitAnd => {
                    // x & c is within [0, c] when c >= 0.
                    i.operands
                        .iter()
                        .filter_map(|o| cx.ranges.get(o))
                        .filter(|r| r.lo >= 0.0)
                        .map(|r| Range { lo: 0.0, hi: r.hi })
                        .next()
                }
                MOpcode::Add => {
                    let a = i.operands.first().and_then(|o| cx.ranges.get(o));
                    let b = i.operands.get(1).and_then(|o| cx.ranges.get(o));
                    match (a, b) {
                        (Some(x), Some(y)) => Some(Range {
                            lo: x.lo + y.lo,
                            hi: x.hi + y.hi,
                        }),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(r) = r {
                cx.ranges.insert(i.id, r);
            }
        }
    }
}

/// Lengths provably fixed: arrays allocated in this function with a
/// constant size and never resized or written.
fn fixed_length_arrays(f: &MirFunction) -> HashMap<InstrId, f64> {
    let defs = def_instrs(f);
    let mut sizes: HashMap<InstrId, f64> = HashMap::new();
    for b in &f.blocks {
        for i in &b.instrs {
            match &i.op {
                MOpcode::NewArrayN => {
                    if let Some(MOpcode::Constant(ConstVal::Number(n))) =
                        defs.get(&i.operands[0]).map(|d| &d.op)
                    {
                        sizes.insert(i.id, *n);
                    }
                }
                MOpcode::NewArray(n) => {
                    sizes.insert(i.id, *n as f64);
                }
                _ => {}
            }
        }
    }
    // Disqualify arrays that are resized, written, passed to calls, or
    // stored anywhere (conservative escape analysis).
    let strip = |id: InstrId| super::util::strip_guards(&defs, id);
    let mut disqualified: HashSet<InstrId> = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            match &i.op {
                MOpcode::SetArrayLength | MOpcode::StoreElement | MOpcode::Intrinsic(_, _) => {
                    disqualified.insert(strip(i.operands[0]));
                }
                MOpcode::Call(_)
                | MOpcode::CallMethod(_)
                | MOpcode::New(_)
                | MOpcode::StoreProperty(_)
                | MOpcode::StoreGlobal(_)
                | MOpcode::NewArray(_)
                | MOpcode::Return => {
                    for o in &i.operands {
                        disqualified.insert(strip(*o));
                    }
                }
                MOpcode::Phi => {
                    for o in &i.operands {
                        disqualified.insert(strip(*o));
                    }
                }
                _ => {}
            }
        }
    }
    sizes.retain(|id, _| !disqualified.contains(id));
    sizes
}

/// Removes bounds checks whose index range provably fits a fixed-length
/// array. Legitimate and conservative; the aggressive (buggy) variants
/// live in [`crate::vuln`].
pub fn bounds_check_elimination(f: &mut MirFunction, cx: &mut PassContext<'_>) {
    let defs = def_instrs(f);
    let fixed = fixed_length_arrays(f);
    let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
    let mut dead: HashSet<InstrId> = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            let MOpcode::BoundsCheck = i.op else { continue };
            let idx = i.operands[0];
            let len = i.operands[1];
            let Some(r) = cx.ranges.get(&idx) else {
                continue;
            };
            // len must be initializedlength of a fixed-size array.
            let Some(len_def) = defs.get(&len) else {
                continue;
            };
            if !matches!(
                len_def.op,
                MOpcode::InitializedLength | MOpcode::ArrayLength
            ) {
                continue;
            }
            let array = super::util::strip_guards(&defs, len_def.operands[0]);
            let Some(&size) = fixed.get(&array) else {
                continue;
            };
            if r.lo >= 0.0 && r.hi < size {
                replacements.insert(i.id, idx);
                dead.insert(i.id);
            }
        }
    }
    replace_uses_map(f, &replacements);
    remove_instrs(f, &dead);
}

/// Annotation-only slot: alias analysis (computes nothing the simplified
/// pipeline needs beyond what GVN re-derives; present to mirror the real
/// pass list and to carry vulnerability hooks).
pub fn alias_analysis(_f: &mut MirFunction, _cx: &mut PassContext<'_>) {}

/// Annotation-only slot: edge case analysis.
pub fn edge_case_analysis(_f: &mut MirFunction, _cx: &mut PassContext<'_>) {}

/// Annotation-only slot: range assertions (debug verification in
/// IonMonkey).
pub fn range_assertions(_f: &mut MirFunction, _cx: &mut PassContext<'_>) {}

/// Graph coherency check (IonMonkey `AssertExtendedGraphCoherency`).
/// Marks the compilation broken instead of panicking.
pub fn check_graph_coherency(f: &mut MirFunction, cx: &mut PassContext<'_>) {
    if let Err(msg) = f.validate() {
        cx.broken = Some(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn checks(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::BoundsCheck))
            .count()
    }

    #[test]
    fn removes_check_on_constant_index_into_local_fixed_array() {
        let mut f = mir("function f() { var a = [1, 2, 3, 4]; return a[2]; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(checks(&f), 1);
        range_analysis(&mut f, &mut cx);
        bounds_check_elimination(&mut f, &mut cx);
        assert_eq!(checks(&f), 0, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn keeps_check_when_array_is_resized() {
        let mut f = mir(
            "function f() { var a = [1, 2, 3, 4]; a.length = 1; return a[2]; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        range_analysis(&mut f, &mut cx);
        bounds_check_elimination(&mut f, &mut cx);
        assert_eq!(checks(&f), 1, "{f}");
    }

    #[test]
    fn keeps_check_when_index_unknown() {
        let mut f = mir("function f(i) { var a = [1, 2, 3]; return a[i]; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        range_analysis(&mut f, &mut cx);
        bounds_check_elimination(&mut f, &mut cx);
        assert_eq!(checks(&f), 1);
    }

    #[test]
    fn keeps_check_when_array_escapes() {
        let mut f = mir(
            "function g(x) { return x; } function f() { var a = [1, 2]; g(a); return a[1]; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        range_analysis(&mut f, &mut cx);
        bounds_check_elimination(&mut f, &mut cx);
        assert_eq!(checks(&f), 1);
    }

    #[test]
    fn ranges_for_masked_values() {
        let mut f = mir("function f(x) { return x & 15; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        range_analysis(&mut f, &mut cx);
        let band = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find(|i| matches!(i.op, MOpcode::BitAnd))
            .unwrap();
        let r = cx.ranges[&band.id];
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 15.0);
    }

    #[test]
    fn coherency_flags_broken_graphs() {
        let mut f = mir("function f() { return 1; }", "f");
        f.blocks[0].instrs.pop(); // drop the terminator
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        check_graph_coherency(&mut f, &mut cx);
        assert!(cx.broken.is_some());
    }
}

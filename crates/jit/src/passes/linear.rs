//! Linear-arithmetic folding (IonMonkey `FoldLinearArithConstants`):
//! reassociates `(x + c1) + c2` into `x + (c1+c2)` so downstream passes
//! see a single constant offset. Only applied when the inner add's result
//! is provably numeric (its operand went through a number unbox or is an
//! int32 producer), since `+` on strings is concatenation.

use std::collections::HashMap;

use jitbull_mir::{ConstVal, InstrId, MOpcode, MirFunction, TypeHint};

use super::util::def_instrs;
use super::PassContext;

fn numeric_producer(op: &MOpcode) -> bool {
    matches!(
        op,
        MOpcode::Sub
            | MOpcode::Mul
            | MOpcode::Div
            | MOpcode::Mod
            | MOpcode::Neg
            | MOpcode::BitAnd
            | MOpcode::BitOr
            | MOpcode::BitXor
            | MOpcode::Lsh
            | MOpcode::Rsh
            | MOpcode::Ursh
            | MOpcode::BitNot
            | MOpcode::ToNumber
            | MOpcode::Unbox(TypeHint::Number)
            | MOpcode::ArrayLength
            | MOpcode::InitializedLength
            | MOpcode::Constant(ConstVal::Number(_))
            | MOpcode::MathFunction(_)
    )
}

/// Runs one folding sweep. Constants are materialized as new instructions
/// placed right before the rewritten add.
pub fn fold_linear_arithmetic(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let defs = def_instrs(f);
    let const_num = |id: InstrId| -> Option<f64> {
        match defs.get(&id).map(|i| &i.op) {
            Some(MOpcode::Constant(ConstVal::Number(n))) => Some(*n),
            _ => None,
        }
    };
    // Planned rewrites: (instr id) -> (x, combined constant).
    let mut plans: HashMap<InstrId, (InstrId, f64)> = HashMap::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if !matches!(i.op, MOpcode::Add) {
                continue;
            }
            let Some(c2) = const_num(i.operands[1]) else {
                continue;
            };
            let Some(inner) = defs.get(&i.operands[0]) else {
                continue;
            };
            if !matches!(inner.op, MOpcode::Add) {
                continue;
            }
            let Some(c1) = const_num(inner.operands[1]) else {
                continue;
            };
            let x = inner.operands[0];
            // x must be provably numeric for reassociation to be sound.
            let numeric = defs
                .get(&x)
                .map(|d| numeric_producer(&d.op))
                .unwrap_or(false);
            if numeric {
                plans.insert(i.id, (x, c1 + c2));
            }
        }
    }
    if plans.is_empty() {
        return;
    }
    for bi in 0..f.blocks.len() {
        let mut pos = 0;
        while pos < f.blocks[bi].instrs.len() {
            let id = f.blocks[bi].instrs[pos].id;
            if let Some(&(x, c)) = plans.get(&id) {
                let cid = f.fresh_id();
                f.blocks[bi].instrs.insert(
                    pos,
                    jitbull_mir::Instruction::new(
                        cid,
                        MOpcode::Constant(ConstVal::Number(c)),
                        vec![],
                    ),
                );
                pos += 1;
                let i = &mut f.blocks[bi].instrs[pos];
                i.operands = vec![x, cid];
            }
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn folds_numeric_offset_chain() {
        // (x|0) makes x numeric, then +1 +2 should combine into +3.
        let mut f = mir("function f(x) { return ((x | 0) + 1) + 2; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        fold_linear_arithmetic(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        assert!(
            f.blocks
                .iter()
                .flat_map(|b| b.instrs.iter())
                .any(|i| matches!(&i.op, MOpcode::Constant(ConstVal::Number(n)) if *n == 3.0)),
            "{f}"
        );
    }

    #[test]
    fn leaves_possible_string_concat_alone() {
        // x may be a string: (x + 1) + 2 must NOT become x + 3.
        let mut f = mir("function f(x) { return (x + 1) + 2; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = f.to_string();
        fold_linear_arithmetic(&mut f, &mut cx);
        assert_eq!(before, f.to_string());
    }
}

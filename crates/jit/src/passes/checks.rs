//! Redundant-check elimination (IonMonkey `EliminateRedundantChecks`):
//! removes guards (`boundscheck`, `unbox`, `typeguard`) dominated by an
//! identical guard on the same operands. Sound because a guard's outcome
//! is a pure function of its operand *values*, which are the same SSA
//! values.

use std::collections::{HashMap, HashSet};

use jitbull_mir::analysis::{dominates, immediate_dominators, reverse_postorder};
use jitbull_mir::{InstrId, MirFunction};

use super::util::{remove_instrs, replace_uses_map};
use super::PassContext;

/// Runs redundant-check elimination.
pub fn eliminate_redundant_checks(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let idom = immediate_dominators(f);
    let rpo = reverse_postorder(f);
    let mut table: HashMap<String, Vec<(jitbull_mir::BlockId, InstrId)>> = HashMap::new();
    let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
    let mut dead: HashSet<InstrId> = HashSet::new();
    let resolve = |replacements: &HashMap<InstrId, InstrId>, mut id: InstrId| {
        while let Some(&n) = replacements.get(&id) {
            id = n;
        }
        id
    };
    for &b in &rpo {
        for i in &f.block(b).instrs {
            if !i.op.is_guard() {
                continue;
            }
            let mut k = format!("{:?}", i.op);
            for o in &i.operands {
                k.push_str(&format!(",{}", resolve(&replacements, *o).0));
            }
            let entries = table.entry(k).or_default();
            let mut found = None;
            for &(db, did) in entries.iter() {
                if db == b || dominates(db, b, &idom) {
                    found = Some(did);
                    break;
                }
            }
            match found {
                Some(prev) if prev != i.id => {
                    replacements.insert(i.id, prev);
                    dead.insert(i.id);
                }
                _ => entries.push((b, i.id)),
            }
        }
    }
    replace_uses_map(f, &replacements);
    remove_instrs(f, &dead);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::{build_mir, MOpcode};
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn count_checks(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::BoundsCheck))
            .count()
    }

    #[test]
    fn dominating_identical_guard_wins() {
        // Read a[i] before the branch and again inside it: after the unbox
        // and length chains merge, the dominated check is redundant.
        let mut f = mir(
            "function f(a, i, c) { var x = a[i]; if (c) { x = x + a[i]; } return x; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        // First merge the unbox/length chains (as the pipeline would via GVN).
        crate::passes::gvn::gvn(&mut f, &mut cx);
        let before = count_checks(&f);
        eliminate_redundant_checks(&mut f, &mut cx);
        let after = count_checks(&f);
        assert!(after <= before);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn sibling_branches_keep_their_guards() {
        let mut f = mir(
            "function f(a, i, c) { if (c) { return a[i]; } return a[i] + 1; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = count_checks(&f);
        eliminate_redundant_checks(&mut f, &mut cx);
        assert_eq!(count_checks(&f), before);
    }
}

//! Loop-invariant code motion (IonMonkey `LICM`).
//!
//! Hoists *pure, movable* instructions whose operands are all defined
//! outside the loop into the loop's preheader. Memory reads and guards are
//! deliberately not hoisted by the legitimate pass — hoisting a
//! `boundscheck` past a call that can shrink the array is exactly the
//! CVE-2019-9792 model in [`crate::vuln`].

use std::collections::HashSet;

use jitbull_mir::analysis::natural_loops;
use jitbull_mir::{BlockId, InstrId, MirFunction};

use super::util::def_blocks;
use super::PassContext;

/// Finds the preheader of a loop: the unique predecessor of the header
/// outside the loop.
pub fn preheader(f: &MirFunction, header: BlockId, members: &HashSet<BlockId>) -> Option<BlockId> {
    let preds = f.predecessors();
    let outside: Vec<BlockId> = preds[header.0 as usize]
        .iter()
        .copied()
        .filter(|p| !members.contains(p))
        .collect();
    match outside.as_slice() {
        [single] => Some(*single),
        _ => None,
    }
}

/// Runs LICM over every natural loop, innermost-last order not required
/// since hoisting is iterated to a fixpoint per loop.
pub fn licm(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let loops = natural_loops(f);
    for l in &loops {
        let Some(pre) = preheader(f, l.header, &l.members) else {
            continue;
        };
        loop {
            let defs = def_blocks(f);
            // An instruction is invariant if movable and all operands are
            // defined outside the loop.
            let mut hoisted = false;
            for &b in &l.members {
                let mut idx = 0;
                while idx < f.block(b).instrs.len() {
                    let i = &f.block(b).instrs[idx];
                    let invariant = i.op.is_movable()
                        && i.operands.iter().all(|o| {
                            defs.get(o)
                                .map(|db| !l.members.contains(db))
                                .unwrap_or(false)
                        });
                    if invariant {
                        let instr = f.block_mut(b).instrs.remove(idx);
                        let pre_block = f.block_mut(pre);
                        let at = pre_block.instrs.len().saturating_sub(1);
                        pre_block.instrs.insert(at, instr);
                        hoisted = true;
                    } else {
                        idx += 1;
                    }
                }
            }
            if !hoisted {
                break;
            }
        }
    }
}

/// Ids of instructions inside loop `members` (test helper).
pub fn loop_instr_ids(f: &MirFunction, members: &HashSet<BlockId>) -> HashSet<InstrId> {
    members
        .iter()
        .flat_map(|b| f.block(*b).iter_all().map(|i| i.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::{build_mir, MOpcode};
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn hoists_invariant_multiplication() {
        let mut f = mir(
            "function f(n, k) { var t = 0; for (var i = 0; i < n; i++) { t = t + k * 3; } return t; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        // The pipeline runs trivial-phi elimination first; without it a
        // loop-invariant local is a self-referential phi in the header.
        crate::passes::phis::eliminate_trivial_phis(&mut f, &mut cx);
        licm(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let loops = natural_loops(&f);
        let ids = loop_instr_ids(&f, &loops[0].members);
        // No mul remains inside the loop.
        let mul_in_loop = f
            .blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::Mul) && ids.contains(&i.id))
            .count();
        assert_eq!(mul_in_loop, 0, "{f}");
    }

    #[test]
    fn does_not_hoist_variant_or_memory_ops() {
        let mut f = mir(
            "function f(a, n) { var t = 0; for (var i = 0; i < n; i++) { t = t + a[i] * i; } return t; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before = f.to_string();
        licm(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let loops = natural_loops(&f);
        let ids = loop_instr_ids(&f, &loops[0].members);
        // loadelement and boundscheck stay in the loop.
        for i in f.blocks.iter().flat_map(|b| b.iter_all()) {
            if matches!(i.op, MOpcode::LoadElement | MOpcode::BoundsCheck) {
                assert!(
                    ids.contains(&i.id),
                    "hoisted {i}\nbefore:\n{before}\nafter:\n{f}"
                );
            }
        }
    }

    #[test]
    fn preheader_detection() {
        let f = mir(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
            "f",
        );
        let loops = natural_loops(&f);
        assert!(preheader(&f, loops[0].header, &loops[0].members).is_some());
    }
}

//! Global value numbering (IonMonkey `ValueNumbering`).
//!
//! Dominator-ordered congruence folding:
//!
//! * pure movable instructions (`add`, `compare`, constants, …) with equal
//!   opcode and operands collapse onto the dominating occurrence;
//! * guards (`boundscheck`, `unbox`, `typeguard`) with equal operands are
//!   *legitimately* redundant when dominated by an identical guard — the
//!   paper's CVE-2019-17026 discussion is precisely about this elimination
//!   being applied when it is **not** justified (see [`crate::vuln`]);
//! * memory reads (`initializedlength`, `arraylength`, `loadproperty`)
//!   are folded only within a block with no intervening effectful
//!   instruction, which keeps the legitimate pass conservative.

use std::collections::{HashMap, HashSet};

use jitbull_mir::analysis::{dominates, immediate_dominators, reverse_postorder};
use jitbull_mir::{InstrId, MOpcode, MirFunction};

use super::util::{remove_instrs, replace_uses_map};
use super::PassContext;

/// Congruence key: mnemonic (which encodes constants' kinds but we need
/// exact constant identity, so constants get their value embedded) plus
/// operand ids.
fn key(op: &MOpcode, operands: &[InstrId]) -> Option<String> {
    use std::fmt::Write as _;
    // NOTE: keys must use the full Debug form, not `mnemonic()` — the
    // mnemonic deliberately drops payloads (global slot, property name)
    // for DNA labeling, and two loads of *different* globals must never
    // be congruent.
    let tag = match op {
        MOpcode::Constant(c) => format!("const:{c:?}"),
        other if other.is_movable() => format!("{other:?}"),
        MOpcode::BoundsCheck | MOpcode::Unbox(_) | MOpcode::TypeGuard(_) => format!("{op:?}"),
        _ => return None,
    };
    let mut k = tag;
    for o in operands {
        let _ = write!(k, ",{}", o.0);
    }
    Some(k)
}

/// Runs GVN over the function.
pub fn gvn(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let idom = immediate_dominators(f);
    let rpo = reverse_postorder(f);
    // Value table: key -> (defining block, id).
    let mut table: HashMap<String, Vec<(jitbull_mir::BlockId, InstrId)>> = HashMap::new();
    let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
    let mut dead: HashSet<InstrId> = HashSet::new();

    let resolve = |replacements: &HashMap<InstrId, InstrId>, mut id: InstrId| {
        while let Some(&n) = replacements.get(&id) {
            id = n;
        }
        id
    };

    for &b in &rpo {
        // Block-local memory-read numbering, reset at effectful ops.
        let mut mem_table: HashMap<String, InstrId> = HashMap::new();
        let block = f.block(b).clone();
        for i in &block.instrs {
            let operands: Vec<InstrId> = i
                .operands
                .iter()
                .map(|o| resolve(&replacements, *o))
                .collect();
            if i.op.is_effectful() {
                mem_table.clear();
                continue;
            }
            if i.op.reads_memory() {
                let mut k = format!("{:?}", i.op);
                for o in &operands {
                    k.push_str(&format!(",{}", o.0));
                }
                if let Some(&prev) = mem_table.get(&k) {
                    replacements.insert(i.id, prev);
                    dead.insert(i.id);
                } else {
                    mem_table.insert(k, i.id);
                }
                continue;
            }
            let Some(k) = key(&i.op, &operands) else {
                continue;
            };
            let entries = table.entry(k).or_default();
            let mut found = None;
            for &(db, did) in entries.iter() {
                if db == b || dominates(db, b, &idom) {
                    found = Some(did);
                    break;
                }
            }
            match found {
                Some(prev) if prev != i.id => {
                    replacements.insert(i.id, prev);
                    dead.insert(i.id);
                }
                _ => entries.push((b, i.id)),
            }
        }
    }
    replace_uses_map(f, &replacements);
    remove_instrs(f, &dead);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn count(f: &MirFunction, pred: impl Fn(&MOpcode) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| pred(&i.op))
            .count()
    }

    #[test]
    fn merges_congruent_arithmetic() {
        let mut f = mir("function f(a, b) { return (a + b) * (a + b); }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Add)), 2);
        gvn(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Add)), 1, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn merges_duplicate_constants() {
        let mut f = mir("function f(x) { return x * 7 + 7; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        gvn(&mut f, &mut cx);
        let sevens = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(&i.op, MOpcode::Constant(jitbull_mir::ConstVal::Number(n)) if *n == 7.0))
            .count();
        assert_eq!(sevens, 1);
    }

    #[test]
    fn does_not_merge_constants_of_different_value() {
        let mut f = mir("function f(x) { return x * 7 + 8; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        gvn(&mut f, &mut cx);
        let consts = count(&f, |o| matches!(o, MOpcode::Constant(_)));
        assert!(consts >= 2, "{f}");
    }

    #[test]
    fn eliminates_redundant_bounds_check_same_block() {
        // a[i] + a[i]: second unbox/length/check collapse onto the first.
        let mut f = mir("function f(a, i) { return a[i] + a[i]; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::BoundsCheck)), 2);
        gvn(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::BoundsCheck)), 1, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn does_not_merge_loads_of_different_globals() {
        // Regression: `loadglobal` for two different slots (or
        // `loadproperty` of two names) must never be congruent even
        // though their DNA mnemonics coincide.
        let mut f = mir(
            "function g() { return 1; } function h() { return 2; } function f() { return g() + h(); }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        gvn(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::LoadGlobal(_))), 2, "{f}");
        let mut p = mir("function f(o) { return o.x + o.y; }", "f");
        gvn(&mut p, &mut cx);
        assert_eq!(
            count(&p, |o| matches!(o, MOpcode::LoadProperty(_))),
            2,
            "{p}"
        );
    }

    #[test]
    fn does_not_merge_length_reads_across_stores() {
        // The store between the two reads may change the length.
        let mut f = mir(
            "function f(a, i) { var x = a[i]; a[100] = 1; return x + a[i]; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::InitializedLength)), 3);
        gvn(&mut f, &mut cx);
        // The two pre-store reads merge legally; the post-store read must
        // survive (2, not 1).
        assert_eq!(
            count(&f, |o| matches!(o, MOpcode::InitializedLength)),
            2,
            "{f}"
        );
        // And it must appear *after* the store in block order.
        let instrs: Vec<_> = f.blocks[0].instrs.iter().map(|i| i.op.mnemonic()).collect();
        let store_pos = instrs.iter().position(|m| m == "storeelement").unwrap();
        let last_len = instrs
            .iter()
            .rposition(|m| m == "initializedlength")
            .unwrap();
        assert!(last_len > store_pos, "{f}");
    }

    #[test]
    fn does_not_merge_across_non_dominating_blocks() {
        let mut f = mir(
            "function f(c, a, b) { if (c) { return a + b; } return a + b; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        gvn(&mut f, &mut cx);
        // Neither branch dominates the other: both adds stay.
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Add)), 2);
    }

    #[test]
    fn merges_across_dominating_blocks() {
        let mut f = mir(
            "function f(c, a, b) { var x = a + b; if (c) { return x + (a + b); } return 0; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        gvn(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Add)), 2, "{f}");
        // x+(a+b): inner a+b merged with dominating def, outer add stays.
        assert_eq!(f.validate(), Ok(()));
    }
}

//! Shared helpers for pass implementations.

use std::collections::{HashMap, HashSet};

use jitbull_mir::{BlockId, InstrId, Instruction, MOpcode, MirFunction};

/// Maps every instruction id to the block defining it.
pub fn def_blocks(f: &MirFunction) -> HashMap<InstrId, BlockId> {
    let mut map = HashMap::with_capacity(f.instr_count());
    for b in f.block_ids() {
        for i in f.block(b).iter_all() {
            map.insert(i.id, b);
        }
    }
    map
}

/// Maps every instruction id to a clone of its defining instruction.
pub fn def_instrs(f: &MirFunction) -> HashMap<InstrId, Instruction> {
    let mut map = HashMap::with_capacity(f.instr_count());
    for b in &f.blocks {
        for i in b.iter_all() {
            map.insert(i.id, i.clone());
        }
    }
    map
}

/// Counts how many operand references each instruction has.
pub fn use_counts(f: &MirFunction) -> HashMap<InstrId, usize> {
    let mut map = HashMap::new();
    for b in &f.blocks {
        for i in b.iter_all() {
            for o in &i.operands {
                *map.entry(*o).or_insert(0) += 1;
            }
        }
    }
    map
}

/// Replaces every use of `from` with `to` across the whole function
/// (operands and phi inputs).
pub fn replace_uses(f: &mut MirFunction, from: InstrId, to: InstrId) {
    for b in &mut f.blocks {
        for i in b.phis.iter_mut().chain(b.instrs.iter_mut()) {
            for o in &mut i.operands {
                if *o == from {
                    *o = to;
                }
            }
        }
    }
}

/// Applies a set of `from → to` replacements in one sweep, following
/// chains (`a→b, b→c` rewrites `a` to `c`).
pub fn replace_uses_map(f: &mut MirFunction, map: &HashMap<InstrId, InstrId>) {
    if map.is_empty() {
        return;
    }
    let resolve = |mut id: InstrId| {
        let mut hops = 0;
        while let Some(&next) = map.get(&id) {
            id = next;
            hops += 1;
            if hops > map.len() {
                break; // cycle guard; cannot happen with well-formed passes
            }
        }
        id
    };
    for b in &mut f.blocks {
        for i in b.phis.iter_mut().chain(b.instrs.iter_mut()) {
            for o in &mut i.operands {
                *o = resolve(*o);
            }
        }
    }
}

/// Removes the given non-terminator instructions (body and phi lists).
pub fn remove_instrs(f: &mut MirFunction, dead: &HashSet<InstrId>) {
    if dead.is_empty() {
        return;
    }
    for b in &mut f.blocks {
        b.phis.retain(|i| !dead.contains(&i.id));
        b.instrs
            .retain(|i| i.op.is_terminator() || !dead.contains(&i.id));
    }
}

/// Strips value-transparent guards (`unbox`, `typeguard`, `boundscheck`)
/// to find the underlying definition id.
pub fn strip_guards(defs: &HashMap<InstrId, Instruction>, mut id: InstrId) -> InstrId {
    loop {
        match defs.get(&id) {
            Some(i) if i.op.is_guard() && !i.operands.is_empty() => id = i.operands[0],
            _ => return id,
        }
    }
}

/// Whether two ids denote "the same array" for vulnerability-trigger
/// purposes: equal after stripping guards, or both loads from the same
/// global slot / property name.
pub fn same_array_root(defs: &HashMap<InstrId, Instruction>, a: InstrId, b: InstrId) -> bool {
    let ra = strip_guards(defs, a);
    let rb = strip_guards(defs, b);
    if ra == rb {
        return true;
    }
    match (defs.get(&ra).map(|i| &i.op), defs.get(&rb).map(|i| &i.op)) {
        (Some(MOpcode::LoadGlobal(x)), Some(MOpcode::LoadGlobal(y))) => x == y,
        (Some(MOpcode::LoadProperty(x)), Some(MOpcode::LoadProperty(y))) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn def_and_use_maps() {
        let f = mir("function f(a) { return a + a; }", "f");
        let defs = def_blocks(&f);
        assert_eq!(defs.len(), f.instr_count());
        let uses = use_counts(&f);
        // Parameter a is used twice by the add.
        let param = f.blocks[0].instrs[0].id;
        assert_eq!(uses[&param], 2);
    }

    #[test]
    fn replace_and_remove() {
        let mut f = mir("function f(a, b) { return a + b; }", "f");
        let a = f.blocks[0].instrs[0].id;
        let b = f.blocks[0].instrs[1].id;
        replace_uses(&mut f, b, a);
        let add = f
            .blocks
            .iter()
            .flat_map(|bl| bl.instrs.iter())
            .find(|i| matches!(i.op, MOpcode::Add))
            .unwrap();
        assert_eq!(add.operands, vec![a, a]);
        let mut dead = HashSet::new();
        dead.insert(b);
        remove_instrs(&mut f, &dead);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn replacement_chains_resolve() {
        let mut f = mir("function f(a, b) { return a + b; }", "f");
        let a = f.blocks[0].instrs[0].id;
        let b = f.blocks[0].instrs[1].id;
        let mut map = HashMap::new();
        map.insert(a, b); // a -> b
        map.insert(b, a); // pathological cycle must not hang
        replace_uses_map(&mut f, &map);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn guard_stripping_finds_array_root() {
        let f = mir("function f(a, i) { return a[i]; }", "f");
        let defs = def_instrs(&f);
        let load = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .find(|i| matches!(i.op, MOpcode::LoadElement))
            .unwrap();
        let root = strip_guards(&defs, load.operands[0]);
        assert!(matches!(defs[&root].op, MOpcode::Parameter(0)));
        assert!(same_array_root(&defs, load.operands[0], root));
    }
}

//! Optimization passes over the MIR.
//!
//! Every pass is a function `fn(&mut MirFunction, &mut PassContext)`; the
//! pipeline in [`crate::pipeline`] sequences them into 32 slots (some
//! passes run more than once, as IonMonkey does).

pub mod checks;
pub mod dce;
pub mod gvn;
pub mod licm;
pub mod linear;
pub mod loadelim;
pub mod phis;
pub mod prune;
pub mod range;
pub mod renumber;
pub mod reorder;
pub mod simplify;
pub mod sink;
pub mod splitedges;
pub mod typespec;
pub mod util;

use std::collections::HashMap;

use jitbull_mir::InstrId;

use crate::vuln::{CveId, VulnConfig};

/// A conservative integer range `[lo, hi]` attached to an instruction by
/// the range-analysis pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// Shared state threaded through the pipeline.
#[derive(Debug)]
pub struct PassContext<'a> {
    /// Which modeled vulnerabilities are active in this engine build.
    pub vulns: &'a VulnConfig,
    /// Ranges computed by [`range::range_analysis`], consumed by
    /// bounds-check elimination.
    pub ranges: HashMap<InstrId, Range>,
    /// Log of (vulnerability, pipeline slot) incorrect transforms that
    /// actually fired during this compilation.
    pub triggered: Vec<(CveId, usize)>,
    /// Set by the coherency pass if the graph went bad (compilation is
    /// then abandoned, like `OptimizeMIR` returning `FAILURE`).
    pub broken: Option<String>,
}

impl<'a> PassContext<'a> {
    /// Creates a context for one compilation.
    pub fn new(vulns: &'a VulnConfig) -> Self {
        PassContext {
            vulns,
            ranges: HashMap::new(),
            triggered: Vec::new(),
            broken: None,
        }
    }
}

//! Phi cleanup passes: trivial-phi elimination (IonMonkey `EliminatePhis`
//! folding) and dead-phi removal.

use std::collections::{HashMap, HashSet};

use jitbull_mir::{InstrId, MirFunction};

use super::util::{remove_instrs, replace_uses_map, use_counts};
use super::PassContext;

/// Replaces phis whose inputs are all the same value (ignoring
/// self-references) with that value, to a fixpoint.
pub fn eliminate_trivial_phis(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    loop {
        let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
        for b in &f.blocks {
            for phi in &b.phis {
                let mut unique: Option<InstrId> = None;
                let mut trivial = true;
                for &o in &phi.operands {
                    if o == phi.id {
                        continue; // self reference
                    }
                    match unique {
                        None => unique = Some(o),
                        Some(u) if u == o => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = unique {
                        replacements.insert(phi.id, u);
                    }
                }
            }
        }
        if replacements.is_empty() {
            return;
        }
        replace_uses_map(f, &replacements);
        let dead: HashSet<InstrId> = replacements.keys().copied().collect();
        remove_instrs(f, &dead);
    }
}

/// Removes phis (transitively) used by nothing.
pub fn eliminate_dead_phis(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    loop {
        let uses = use_counts(f);
        let dead: HashSet<InstrId> = f
            .blocks
            .iter()
            .flat_map(|b| b.phis.iter())
            .filter(|p| uses.get(&p.id).copied().unwrap_or(0) == 0)
            .map(|p| p.id)
            .collect();
        if dead.is_empty() {
            return;
        }
        remove_instrs(f, &dead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn same_value_both_arms_becomes_direct_use() {
        // x is 1 on both paths: the join phi is trivial.
        let mut f = mir(
            "function f(c) { var x = 1; if (c) { x = 1; } else { x = 1; } return x; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before: usize = f.blocks.iter().map(|b| b.phis.len()).sum();
        eliminate_trivial_phis(&mut f, &mut cx);
        eliminate_dead_phis(&mut f, &mut cx);
        let after: usize = f.blocks.iter().map(|b| b.phis.len()).sum();
        assert!(after < before, "phis {before} -> {after}\n{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn loop_carried_phi_is_kept() {
        let mut f = mir(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        eliminate_trivial_phis(&mut f, &mut cx);
        eliminate_dead_phis(&mut f, &mut cx);
        let phis: usize = f.blocks.iter().map(|b| b.phis.len()).sum();
        assert!(phis >= 2, "induction phis must survive\n{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn unused_loop_phi_is_dropped() {
        // `u` is loop-carried but never read after the loop.
        let mut f = mir(
            "function f(n) { var u = 0; var t = 0; for (var i = 0; i < n; i++) { u = u + 2; t = t + 1; } return t; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let before: usize = f.blocks.iter().map(|b| b.phis.len()).sum();
        // The add feeding u is removed by DCE normally; dead-phi alone
        // can't drop it because the add uses the phi. Run trivial+dead to
        // check stability instead.
        eliminate_trivial_phis(&mut f, &mut cx);
        eliminate_dead_phis(&mut f, &mut cx);
        assert!(f.validate().is_ok());
        let after: usize = f.blocks.iter().map(|b| b.phis.len()).sum();
        assert!(after <= before);
    }
}

//! Canonicalization passes: commutative operand ordering and simple
//! instruction scheduling (constants float to the top of their block).

use jitbull_mir::{MOpcode, MirFunction};

use super::PassContext;

fn commutative(op: &MOpcode) -> bool {
    use jitbull_mir::CmpOp;
    matches!(
        op,
        MOpcode::Mul // both operands are number-coerced
            | MOpcode::BitAnd
            | MOpcode::BitOr
            | MOpcode::BitXor
            | MOpcode::Compare(CmpOp::Eq)
            | MOpcode::Compare(CmpOp::Ne)
            | MOpcode::Compare(CmpOp::StrictEq)
            | MOpcode::Compare(CmpOp::StrictNe)
    )
}

/// Orders the operands of commutative instructions by ascending id, so GVN
/// sees `mul a b` and `mul b a` as congruent on its next application.
pub fn reorder_commutative(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    for b in &mut f.blocks {
        for i in &mut b.instrs {
            if commutative(&i.op) && i.operands.len() == 2 && i.operands[0] > i.operands[1] {
                i.operands.swap(0, 1);
            }
        }
    }
}

/// Moves constants to the front of their block (after phis), modelling a
/// scheduling pass: a real, observable-in-the-IR reordering with no
/// semantic effect.
pub fn schedule_constants(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    for b in &mut f.blocks {
        let mut consts = Vec::new();
        let mut rest = Vec::new();
        for i in b.instrs.drain(..) {
            if matches!(i.op, MOpcode::Constant(_)) {
                consts.push(i);
            } else {
                rest.push(i);
            }
        }
        consts.extend(rest);
        b.instrs = consts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    #[test]
    fn canonicalizes_mul_but_not_sub() {
        let mut f = mir("function f(a, b) { return b * a + (b - a); }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        reorder_commutative(&mut f, &mut cx);
        for i in f.blocks.iter().flat_map(|b| b.instrs.iter()) {
            match i.op {
                MOpcode::Mul => assert!(i.operands[0] <= i.operands[1]),
                MOpcode::Sub => {
                    // b - a keeps its original (descending) order.
                    assert!(i.operands[0] > i.operands[1]);
                }
                _ => {}
            }
        }
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn schedules_constants_first() {
        let mut f = mir("function f(a) { var x = a + 1; return x * 2; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        schedule_constants(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let b = &f.blocks[0];
        let first_non_const = b
            .instrs
            .iter()
            .position(|i| !matches!(i.op, MOpcode::Constant(_)))
            .unwrap();
        assert!(b.instrs[..first_non_const]
            .iter()
            .all(|i| matches!(i.op, MOpcode::Constant(_))));
        assert!(!b.instrs[first_non_const..]
            .iter()
            .any(|i| matches!(i.op, MOpcode::Constant(_))));
    }
}

//! Instruction renumbering (IonMonkey `RenumberInstructions`).
//!
//! Assigns dense, block-ordered ids. Mandatory: the executor indexes value
//! slots by id, and several passes assume `id_bound()` is tight.

use std::collections::HashMap;

use jitbull_mir::{InstrId, MirFunction};

use super::PassContext;

/// Renumbers all instructions densely in block order (phis first).
pub fn renumber(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let mut map: HashMap<InstrId, InstrId> = HashMap::with_capacity(f.instr_count());
    let mut next = 0u32;
    for b in &f.blocks {
        for i in b.iter_all() {
            map.insert(i.id, InstrId(next));
            next += 1;
        }
    }
    for b in &mut f.blocks {
        for i in b.phis.iter_mut().chain(b.instrs.iter_mut()) {
            i.id = map[&i.id];
            for o in &mut i.operands {
                *o = map[o];
            }
        }
    }
    f.set_id_bound(next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    #[test]
    fn ids_become_dense_and_graph_stays_valid() {
        let p = parse_program(
            "function f(n) { var t = 0; for (var i = 0; i < n; i++) { t += i; } return t; }",
        )
        .unwrap();
        let m = compile_program(&p).unwrap();
        let mut f = build_mir(&m, m.function_id("f").unwrap()).unwrap();
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        renumber(&mut f, &mut cx);
        assert_eq!(f.validate(), Ok(()));
        let mut expected = 0u32;
        for b in &f.blocks {
            for i in b.iter_all() {
                assert_eq!(i.id.0, expected);
                expected += 1;
            }
        }
        assert_eq!(f.id_bound(), expected);
    }
}

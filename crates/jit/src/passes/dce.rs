//! Dead code elimination (IonMonkey `EliminateDeadCode`).
//!
//! Liveness roots are effectful instructions and terminators; anything a
//! root (transitively) references stays. Guards survive exactly when the
//! access they protect survives — an orphaned guard is removable, which is
//! correct because nothing consumes its vouching.

use std::collections::HashSet;

use jitbull_mir::{InstrId, MirFunction};

use super::util::remove_instrs;
use super::PassContext;

/// Removes pure instructions and phis that no live instruction references.
pub fn dce(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let mut live: HashSet<InstrId> = HashSet::new();
    let mut work: Vec<InstrId> = Vec::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if i.op.is_effectful() || i.op.is_terminator() {
                live.insert(i.id);
                work.extend(&i.operands);
            }
        }
    }
    // Operand index for transitive marking.
    let defs = super::util::def_instrs(f);
    while let Some(id) = work.pop() {
        if !live.insert(id) {
            continue;
        }
        if let Some(i) = defs.get(&id) {
            work.extend(&i.operands);
        }
    }
    let dead: HashSet<InstrId> = defs
        .keys()
        .copied()
        .filter(|id| !live.contains(id))
        .collect();
    remove_instrs(f, &dead);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::{build_mir, MOpcode};
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn count(f: &MirFunction, pred: impl Fn(&MOpcode) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| pred(&i.op))
            .count()
    }

    #[test]
    fn removes_unused_arithmetic() {
        let mut f = mir("function f(a, b) { var unused = a * b; return a; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Mul)), 1);
        dce(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Mul)), 0);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn keeps_effectful_instructions() {
        let mut f = mir(
            "function g() { return 1; } function f(a) { g(); a[0] = 2; print(a); return 0; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        dce(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Call(_))), 1);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::StoreElement)), 1);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::Print)), 1);
        // The store's boundscheck chain stays because the store uses it.
        assert_eq!(count(&f, |o| matches!(o, MOpcode::BoundsCheck)), 1);
    }

    #[test]
    fn removes_unused_load_and_its_guards() {
        let mut f = mir("function f(a, i) { var x = a[i]; return 7; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        dce(&mut f, &mut cx);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::LoadElement)), 0);
        assert_eq!(count(&f, |o| matches!(o, MOpcode::BoundsCheck)), 0);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn removes_dead_loop_computation_chain() {
        let mut f = mir(
            "function f(n) { var u = 0; var t = 0; for (var i = 0; i < n; i++) { u = u + 2; t = t + 1; } return t; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        let adds_before = count(&f, |o| matches!(o, MOpcode::Add));
        dce(&mut f, &mut cx);
        let adds_after = count(&f, |o| matches!(o, MOpcode::Add));
        assert!(adds_after < adds_before, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }
}

//! Block-local redundant property-load elimination (a simplified
//! IonMonkey `ScalarReplacement`-family optimization).
//!
//! Within one block, a `loadproperty` that re-reads a (base, name) pair
//! already read or written — with no intervening instruction that could
//! write memory — is forwarded. Writes to a property invalidate cached
//! entries for that name on *every* base (aliasing-conservative).

use std::collections::{HashMap, HashSet};

use jitbull_mir::{InstrId, MOpcode, MirFunction};

use super::util::{remove_instrs, replace_uses_map};
use super::PassContext;

/// Runs redundant-load elimination.
pub fn redundant_load_elimination(f: &mut MirFunction, _cx: &mut PassContext<'_>) {
    let mut replacements: HashMap<InstrId, InstrId> = HashMap::new();
    let mut dead: HashSet<InstrId> = HashSet::new();
    for b in &f.blocks {
        // (base, name) -> known value
        let mut known: HashMap<(InstrId, String), InstrId> = HashMap::new();
        for i in &b.instrs {
            match &i.op {
                MOpcode::LoadProperty(name) => {
                    let base = i.operands[0];
                    let k = (base, name.to_string());
                    if let Some(&v) = known.get(&k) {
                        replacements.insert(i.id, v);
                        dead.insert(i.id);
                    } else {
                        known.insert(k, i.id);
                    }
                }
                MOpcode::StoreProperty(name) => {
                    let base = i.operands[0];
                    let value = i.operands[1];
                    let name = name.to_string();
                    known.retain(|(_, n), _| *n != name);
                    known.insert((base, name), value);
                }
                op if op.is_effectful() => known.clear(),
                _ => {}
            }
        }
    }
    replace_uses_map(f, &replacements);
    remove_instrs(f, &dead);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::VulnConfig;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn loads(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::LoadProperty(_)))
            .count()
    }

    #[test]
    fn forwards_repeated_reads() {
        let mut f = mir("function f(o) { return o.x + o.x; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        assert_eq!(loads(&f), 2);
        redundant_load_elimination(&mut f, &mut cx);
        assert_eq!(loads(&f), 1);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn forwards_store_to_load() {
        let mut f = mir("function f(o, v) { o.x = v; return o.x; }", "f");
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        redundant_load_elimination(&mut f, &mut cx);
        assert_eq!(loads(&f), 0, "{f}");
    }

    #[test]
    fn calls_invalidate_cache() {
        let mut f = mir(
            "function g() { return 0; } function f(o) { var a = o.x; g(); return a + o.x; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        redundant_load_elimination(&mut f, &mut cx);
        assert_eq!(loads(&f), 2);
    }

    #[test]
    fn store_to_same_name_other_base_invalidates() {
        let mut f = mir(
            "function f(o, p, v) { var a = o.x; p.x = v; return a + o.x; }",
            "f",
        );
        let vulns = VulnConfig::default();
        let mut cx = PassContext::new(&vulns);
        redundant_load_elimination(&mut f, &mut cx);
        // o and p might alias: the second o.x must be re-read.
        assert_eq!(loads(&f), 2);
    }
}

//! Injectable models of the eight IonMonkey CVEs the paper evaluates
//! (§VI-B security set: CVE-2019-9791, -9810, -11707, -17026; §VI-D
//! scalability set: CVE-2019-9792, -9795, -9813, CVE-2020-26952).
//!
//! Each model is an **incorrect transform** attached to a specific
//! pipeline slot, firing only when the compiled function exhibits the
//! IR pattern its proof-of-concept sets up (the *trigger*). The effect is
//! always the removal or weakening of a guard (`boundscheck` /
//! `unbox:array`), which is exactly the bug class the paper's Section III
//! analysis identifies; with the guard gone, the executor's raw memory
//! accesses become reachable and the simulated heap can actually be
//! corrupted.
//!
//! Enabling a model makes the engine *vulnerable* (it models running the
//! unpatched Firefox 65); it does not by itself exploit anything — the
//! demonstrator codes in `jitbull-vdc` do that.

use std::collections::{BTreeSet, HashSet};
use std::fmt;

use jitbull_mir::analysis::natural_loops;
use jitbull_mir::{InstrId, MOpcode, MirFunction};

use crate::passes::util::{
    def_instrs, remove_instrs, replace_uses_map, same_array_root, strip_guards,
};
use crate::passes::PassContext;
use crate::pipeline::slot;

/// One modeled vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CveId {
    /// Type-inference confusion → `unbox:array` dropped on phi'd bases
    /// (crash PoC). Injected into *TypeSpecialization*.
    Cve2019_9791,
    /// Masked-index bounds check removed by GVN when the array is also
    /// resized (crash PoC). Injected into *GVN*.
    Cve2019_9810,
    /// `Array.pop`-related check removal (payload PoC). Injected into
    /// *EliminateRedundantChecks* (first application).
    Cve2019_11707,
    /// The paper's running example: GVN removes the bounds check after an
    /// `arr.length` shrink due to bad alias/dependency modeling (payload
    /// PoC). Injected into *GVN*.
    Cve2019_17026,
    /// LICM "hoists" checks past calls that may resize the array.
    /// Injected into *LICM*.
    Cve2019_9792,
    /// Range analysis trusts a growth-only assumption for induction
    /// indexes when `push` is present. Injected into
    /// *BoundsCheckElimination*.
    Cve2019_9795,
    /// Redundant-check merge ignores dominance across sibling blocks.
    /// Injected into *EliminateRedundantChecks* (second application).
    Cve2019_9813,
    /// Linear-arithmetic folding "proves" `x + c` in range. Injected into
    /// *FoldLinearArithmetic*.
    Cve2020_26952,
}

impl CveId {
    /// All modeled CVEs, security-evaluation set first.
    pub fn all() -> [CveId; 8] {
        [
            CveId::Cve2019_9791,
            CveId::Cve2019_9810,
            CveId::Cve2019_11707,
            CveId::Cve2019_17026,
            CveId::Cve2019_9792,
            CveId::Cve2019_9795,
            CveId::Cve2019_9813,
            CveId::Cve2020_26952,
        ]
    }

    /// The four CVEs of the paper's §VI-B security evaluation.
    pub fn security_set() -> [CveId; 4] {
        [
            CveId::Cve2019_9791,
            CveId::Cve2019_9810,
            CveId::Cve2019_11707,
            CveId::Cve2019_17026,
        ]
    }

    /// Canonical CVE identifier.
    pub fn name(self) -> &'static str {
        match self {
            CveId::Cve2019_9791 => "CVE-2019-9791",
            CveId::Cve2019_9810 => "CVE-2019-9810",
            CveId::Cve2019_11707 => "CVE-2019-11707",
            CveId::Cve2019_17026 => "CVE-2019-17026",
            CveId::Cve2019_9792 => "CVE-2019-9792",
            CveId::Cve2019_9795 => "CVE-2019-9795",
            CveId::Cve2019_9813 => "CVE-2019-9813",
            CveId::Cve2020_26952 => "CVE-2020-26952",
        }
    }

    /// Parses a canonical CVE identifier.
    pub fn from_name(name: &str) -> Option<CveId> {
        CveId::all().into_iter().find(|c| c.name() == name)
    }

    /// The pipeline slot whose pass carries this bug.
    pub fn pass_slot(self) -> usize {
        match self {
            CveId::Cve2019_9791 => slot::TYPE_SPECIALIZATION,
            CveId::Cve2019_9810 => slot::GVN_1,
            CveId::Cve2019_11707 => slot::ELIMINATE_REDUNDANT_CHECKS_1,
            CveId::Cve2019_17026 => slot::GVN_1,
            CveId::Cve2019_9792 => slot::LICM,
            CveId::Cve2019_9795 => slot::BOUNDS_CHECK_ELIMINATION,
            CveId::Cve2019_9813 => slot::ELIMINATE_REDUNDANT_CHECKS_2,
            CveId::Cve2020_26952 => slot::FOLD_LINEAR_ARITHMETIC,
        }
    }
}

impl fmt::Display for CveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of vulnerabilities present in this engine build (i.e. which
/// unpatched bugs the simulated browser ships with).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VulnConfig {
    enabled: BTreeSet<CveId>,
}

impl VulnConfig {
    /// No vulnerabilities (a fully patched engine).
    pub fn none() -> Self {
        VulnConfig::default()
    }

    /// All eight modeled vulnerabilities.
    pub fn all() -> Self {
        let mut v = VulnConfig::default();
        for c in CveId::all() {
            v.enabled.insert(c);
        }
        v
    }

    /// An engine vulnerable to exactly these CVEs.
    pub fn with(cves: impl IntoIterator<Item = CveId>) -> Self {
        VulnConfig {
            enabled: cves.into_iter().collect(),
        }
    }

    /// Enables one CVE.
    pub fn enable(&mut self, cve: CveId) {
        self.enabled.insert(cve);
    }

    /// Whether the CVE is enabled.
    pub fn is_enabled(&self, cve: CveId) -> bool {
        self.enabled.contains(&cve)
    }

    /// All enabled CVEs.
    pub fn enabled(&self) -> impl Iterator<Item = CveId> + '_ {
        self.enabled.iter().copied()
    }

    /// A stable fingerprint of the enabled set (FNV-1a over the canonical
    /// CVE names, in `BTreeSet` order). Two configs fingerprint equal iff
    /// they enable the same CVEs; the guard keys its DNA memo on this so
    /// changing the engine's vulnerability surface can never serve a
    /// stale extraction.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for cve in &self.enabled {
            for b in cve.name().as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Frame each name so concatenations can't collide.
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Applies every enabled vulnerability whose pass lives in `slot_index`,
/// right after the legitimate pass body ran. Fired transforms are logged
/// in the context.
pub fn apply_vulnerabilities(slot_index: usize, f: &mut MirFunction, cx: &mut PassContext<'_>) {
    for cve in CveId::all() {
        if cve.pass_slot() == slot_index && cx.vulns.is_enabled(cve) {
            let fired = match cve {
                CveId::Cve2019_9791 => cve_9791(f),
                CveId::Cve2019_9810 => cve_9810(f),
                CveId::Cve2019_11707 => cve_11707(f),
                CveId::Cve2019_17026 => cve_17026(f),
                CveId::Cve2019_9792 => cve_9792(f),
                CveId::Cve2019_9795 => cve_9795(f),
                CveId::Cve2019_9813 => cve_9813(f),
                CveId::Cve2020_26952 => cve_26952(f),
            };
            if fired {
                cx.triggered.push((cve, slot_index));
            }
        }
    }
}

/// Removes the given bounds checks, rewiring users to the raw index.
fn drop_checks(f: &mut MirFunction, checks: Vec<(InstrId, InstrId)>) -> bool {
    if checks.is_empty() {
        return false;
    }
    let map: std::collections::HashMap<InstrId, InstrId> = checks.iter().copied().collect();
    let dead: HashSet<InstrId> = checks.iter().map(|(id, _)| *id).collect();
    replace_uses_map(f, &map);
    remove_instrs(f, &dead);
    true
}

/// All `boundscheck` instructions as `(id, idx operand, len operand)`.
fn all_checks(f: &MirFunction) -> Vec<(InstrId, InstrId, InstrId)> {
    f.blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .filter(|i| matches!(i.op, MOpcode::BoundsCheck))
        .map(|i| (i.id, i.operands[0], i.operands[1]))
        .collect()
}

/// CVE-2019-17026 model: if the function shrinks some array's length
/// (`setarraylength`), GVN's (incorrect) dependency analysis treats the
/// pre-shrink length as still valid and removes the bounds checks on that
/// same array.
fn cve_17026(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let resized: Vec<InstrId> = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .filter(|i| matches!(i.op, MOpcode::SetArrayLength))
        .map(|i| i.operands[0])
        .collect();
    if resized.is_empty() {
        return false;
    }
    let mut victims = Vec::new();
    for (id, idx, len) in all_checks(f) {
        let Some(len_def) = defs.get(&len) else {
            continue;
        };
        if !matches!(
            len_def.op,
            MOpcode::InitializedLength | MOpcode::ArrayLength
        ) {
            continue;
        }
        let array = len_def.operands[0];
        if resized.iter().any(|r| same_array_root(&defs, *r, array)) {
            victims.push((id, idx));
        }
    }
    drop_checks(f, victims)
}

/// CVE-2019-9810 model: a masked index (`x & c`) is "proven" in range and
/// its check removed whenever the function also resizes an array — the
/// same root flaw as 17026, surfacing on the masked-index pattern.
fn cve_9810(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let has_resize = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .any(|i| matches!(i.op, MOpcode::SetArrayLength));
    if !has_resize {
        return false;
    }
    let mut victims = Vec::new();
    for (id, idx, _len) in all_checks(f) {
        let root = strip_guards(&defs, idx);
        if matches!(defs.get(&root).map(|d| &d.op), Some(MOpcode::BitAnd)) {
            victims.push((id, idx));
        }
    }
    drop_checks(f, victims)
}

/// CVE-2019-11707 model: checks on arrays that also flow into
/// `Array.prototype.pop` are considered redundant (the pop's length
/// update is mis-modeled).
fn cve_11707(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let popped: Vec<InstrId> = f
        .blocks
        .iter()
        .flat_map(|b| b.instrs.iter())
        .filter(|i| {
            matches!(
                i.op,
                MOpcode::Intrinsic(jitbull_vm::bytecode::IntrinsicMethod::Pop, _)
            )
        })
        .map(|i| i.operands[0])
        .collect();
    if popped.is_empty() {
        return false;
    }
    let mut victims = Vec::new();
    for (id, idx, len) in all_checks(f) {
        let Some(len_def) = defs.get(&len) else {
            continue;
        };
        if !matches!(
            len_def.op,
            MOpcode::InitializedLength | MOpcode::ArrayLength
        ) {
            continue;
        }
        let array = len_def.operands[0];
        if popped.iter().any(|p| same_array_root(&defs, *p, array)) {
            victims.push((id, idx));
        }
    }
    drop_checks(f, victims)
}

/// CVE-2019-9791 model: when a phi merges `undefined` into a value that
/// is also used as an element-access base, type inference wrongly
/// concludes the base is always an array and drops its `unbox:array`
/// guard. With the guard gone, a number flowing in is dereferenced as a
/// heap address (type confusion).
fn cve_9791(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    // A phi is "poisoned" when one of its inputs is constant undefined or
    // a number while others are not.
    let poisoned_phis: HashSet<InstrId> = f
        .blocks
        .iter()
        .flat_map(|b| b.phis.iter())
        .filter(|phi| {
            phi.operands.iter().any(|o| {
                matches!(
                    defs.get(o).map(|d| &d.op),
                    Some(MOpcode::Constant(jitbull_mir::ConstVal::Undefined))
                        | Some(MOpcode::Constant(jitbull_mir::ConstVal::Number(_)))
                )
            })
        })
        .map(|phi| phi.id)
        .collect();
    if poisoned_phis.is_empty() {
        return false;
    }
    // Drop unbox:array guards whose operand resolves to a poisoned phi.
    let mut map = std::collections::HashMap::new();
    let mut dead = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if let MOpcode::Unbox(jitbull_mir::TypeHint::Array) = i.op {
                let root = strip_guards(&defs, i.operands[0]);
                if poisoned_phis.contains(&root) {
                    map.insert(i.id, i.operands[0]);
                    dead.insert(i.id);
                }
            }
        }
    }
    if map.is_empty() {
        return false;
    }
    replace_uses_map(f, &map);
    remove_instrs(f, &dead);
    true
}

/// CVE-2019-9792 model: LICM treats bounds checks inside loops containing
/// calls as loop-invariant and removes them from the loop ("hoists past
/// the call" — but the callee can resize the array).
fn cve_9792(f: &mut MirFunction) -> bool {
    let loops = natural_loops(f);
    let mut victims = Vec::new();
    for l in &loops {
        let has_call = l.members.iter().any(|b| {
            f.block(*b)
                .instrs
                .iter()
                .any(|i| matches!(i.op, MOpcode::Call(_) | MOpcode::CallMethod(_)))
        });
        if !has_call {
            continue;
        }
        for b in &l.members {
            for i in &f.block(*b).instrs {
                if matches!(i.op, MOpcode::BoundsCheck) {
                    victims.push((i.id, i.operands[0]));
                }
            }
        }
    }
    victims.dedup();
    drop_checks(f, victims)
}

/// CVE-2019-9795 model: with `push` present, range analysis assumes the
/// array only grows and removes checks whose index is a loop-carried phi.
fn cve_9795(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let has_push = f.blocks.iter().flat_map(|b| b.instrs.iter()).any(|i| {
        matches!(
            i.op,
            MOpcode::Intrinsic(jitbull_vm::bytecode::IntrinsicMethod::Push, _)
        )
    });
    if !has_push {
        return false;
    }
    let mut victims = Vec::new();
    for (id, idx, _len) in all_checks(f) {
        let root = strip_guards(&defs, idx);
        if matches!(defs.get(&root).map(|d| &d.op), Some(MOpcode::Phi)) {
            victims.push((id, idx));
        }
    }
    drop_checks(f, victims)
}

/// CVE-2019-9813 model: the redundancy merge forgets to require
/// dominance — any later (block-order) check on an array that has an
/// earlier check *somewhere* is removed.
fn cve_9813(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let checks = all_checks(f);
    if checks.len() < 2 {
        return false;
    }
    // Block-order position of each check.
    let mut seen_roots: HashSet<InstrId> = HashSet::new();
    let mut victims = Vec::new();
    for b in &f.blocks {
        for i in &b.instrs {
            if !matches!(i.op, MOpcode::BoundsCheck) {
                continue;
            }
            let Some(len_def) = defs.get(&i.operands[1]) else {
                continue;
            };
            if len_def.operands.is_empty() {
                continue;
            }
            let root = strip_guards(&defs, len_def.operands[0]);
            if !seen_roots.insert(root) {
                victims.push((i.id, i.operands[0]));
            }
        }
    }
    drop_checks(f, victims)
}

/// CVE-2020-26952 model: linear-arithmetic folding "proves" any index of
/// the form `x + constant` in range and removes its check.
fn cve_26952(f: &mut MirFunction) -> bool {
    let defs = def_instrs(f);
    let mut victims = Vec::new();
    for (id, idx, _len) in all_checks(f) {
        let root = strip_guards(&defs, idx);
        let Some(d) = defs.get(&root) else { continue };
        if matches!(d.op, MOpcode::Add) {
            let rhs_const = d
                .operands
                .get(1)
                .and_then(|o| defs.get(o))
                .map(|x| matches!(x.op, MOpcode::Constant(jitbull_mir::ConstVal::Number(_))))
                .unwrap_or(false);
            if rhs_const {
                victims.push((id, idx));
            }
        }
    }
    drop_checks(f, victims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;
    use jitbull_mir::build_mir;
    use jitbull_vm::compile_program;

    fn mir(src: &str, name: &str) -> MirFunction {
        let p = parse_program(src).unwrap();
        let m = compile_program(&p).unwrap();
        build_mir(&m, m.function_id(name).unwrap()).unwrap()
    }

    fn checks(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::BoundsCheck))
            .count()
    }

    #[test]
    fn cve_ids_round_trip() {
        for cve in CveId::all() {
            assert_eq!(CveId::from_name(cve.name()), Some(cve));
        }
        assert_eq!(CveId::from_name("CVE-1999-0001"), None);
    }

    #[test]
    fn config_controls_application() {
        let mut f = mir(
            "function pwn(a, v) { a.length = 4; a[20] = v; return a[0]; }",
            "pwn",
        );
        // Disabled: nothing happens.
        let vulns = VulnConfig::none();
        let mut cx = PassContext::new(&vulns);
        let before = checks(&f);
        apply_vulnerabilities(slot::GVN_1, &mut f, &mut cx);
        assert_eq!(checks(&f), before);
        assert!(cx.triggered.is_empty());
        // Enabled: checks on the resized array are gone.
        let vulns = VulnConfig::with([CveId::Cve2019_17026]);
        let mut cx = PassContext::new(&vulns);
        apply_vulnerabilities(slot::GVN_1, &mut f, &mut cx);
        assert_eq!(checks(&f), 0, "{f}");
        assert_eq!(cx.triggered, vec![(CveId::Cve2019_17026, slot::GVN_1)]);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn cve_17026_needs_a_resize() {
        let mut f = mir("function f(a, i) { return a[i]; }", "f");
        assert!(!cve_17026(&mut f));
        assert_eq!(checks(&f), 1);
    }

    #[test]
    fn cve_9810_needs_mask_and_resize() {
        let mut f = mir("function f(a, i) { a.length = 2; return a[i & 255]; }", "f");
        assert!(cve_9810(&mut f));
        assert_eq!(checks(&f), 0);
        let mut g = mir("function f(a, i) { return a[i & 255]; }", "f");
        assert!(!cve_9810(&mut g));
        let mut h = mir("function f(a, i) { a.length = 2; return a[i]; }", "f");
        assert!(!cve_9810(&mut h));
    }

    #[test]
    fn cve_11707_triggers_on_pop() {
        let mut f = mir("function f(a, i, v) { a.pop(); a[i] = v; return 0; }", "f");
        assert!(cve_11707(&mut f));
        assert_eq!(checks(&f), 0);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn cve_9791_drops_unbox_on_poisoned_phi() {
        let mut f = mir(
            "function f(c, a, i) { var b; if (c) { b = a; } else { b = 3735928559; } return b[i]; }",
            "f",
        );
        let unboxes_before = f
            .blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::Unbox(jitbull_mir::TypeHint::Array)))
            .count();
        assert!(unboxes_before >= 1);
        assert!(cve_9791(&mut f));
        let unboxes_after = f
            .blocks
            .iter()
            .flat_map(|b| b.iter_all())
            .filter(|i| matches!(i.op, MOpcode::Unbox(jitbull_mir::TypeHint::Array)))
            .count();
        assert_eq!(unboxes_after, 0, "{f}");
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn cve_9792_strips_checks_in_call_loops() {
        let mut f = mir(
            "function g() { return 0; } function f(a, n, v) { for (var i = 0; i < n; i++) { g(); a[i] = v; } return 0; }",
            "f",
        );
        assert!(cve_9792(&mut f));
        assert_eq!(checks(&f), 0);
        // No call in the loop: no trigger.
        let mut h = mir(
            "function f(a, n, v) { for (var i = 0; i < n; i++) { a[i] = v; } return 0; }",
            "f",
        );
        assert!(!cve_9792(&mut h));
    }

    #[test]
    fn cve_9795_triggers_on_push_with_phi_index() {
        let mut f = mir(
            "function f(a, n) { var t = 0; a.push(1); for (var i = 0; i < n; i++) { t += a[i]; } return t; }",
            "f",
        );
        assert!(cve_9795(&mut f));
        assert_eq!(checks(&f), 0);
    }

    #[test]
    fn cve_9813_removes_non_dominated_duplicate() {
        let mut f = mir(
            "function f(a, i, c) { if (c) { a[i] = 1; } else { a[i] = 2; } return 0; }",
            "f",
        );
        assert_eq!(checks(&f), 2);
        assert!(cve_9813(&mut f));
        assert_eq!(checks(&f), 1);
    }

    #[test]
    fn cve_26952_removes_offset_index_checks() {
        let mut f = mir("function f(a, i) { return a[i + 3]; }", "f");
        assert!(cve_26952(&mut f));
        assert_eq!(checks(&f), 0);
        let mut g = mir("function f(a, i) { return a[i]; }", "f");
        assert!(!cve_26952(&mut g));
    }

    #[test]
    fn fingerprint_separates_distinct_vuln_sets() {
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(VulnConfig::none().fingerprint()));
        assert!(seen.insert(VulnConfig::all().fingerprint()));
        for cve in CveId::all() {
            assert!(
                seen.insert(VulnConfig::with([cve]).fingerprint()),
                "{cve} collides with a previous set"
            );
        }
        // Order of enablement is irrelevant: the set is canonical.
        let mut a = VulnConfig::none();
        a.enable(CveId::Cve2019_9810);
        a.enable(CveId::Cve2019_17026);
        let mut b = VulnConfig::none();
        b.enable(CveId::Cve2019_17026);
        b.enable(CveId::Cve2019_9810);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}

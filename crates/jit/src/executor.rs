//! The optimizing-tier executor: runs optimized MIR directly against the
//! VM runtime at 1 cycle per instruction.
//!
//! ## Guarded vs raw memory accesses
//!
//! This is where the vulnerability models become *exploitable* rather than
//! cosmetic. A `loadelement`/`storeelement` consults its operands'
//! defining instructions:
//!
//! * if the index flows through a live `boundscheck`, the access takes the
//!   **raw** fast path when the check passed and the **safe** (interpreter
//!   semantics) path when it failed — exactly as compiled fast paths and
//!   bailouts behave;
//! * if the bounds check was removed (legitimately by a sound pass, or
//!   incorrectly by a modeled CVE), the access is raw and *unchecked*: an
//!   out-of-range index reads or writes neighbouring heap cells;
//! * if the base's `unbox:array` guard was removed and a number flows in,
//!   the number is dereferenced as a heap address (type confusion).

use std::rc::Rc;

use jitbull_mir::{CmpOp, ConstVal, InstrId, MOpcode, MirFunction};
use jitbull_vm::bytecode::Module;
use jitbull_vm::interp::{eval_binop, eval_intrinsic, eval_math, eval_unop, invoke_value};
use jitbull_vm::runtime::{Runtime, ION_COST};
use jitbull_vm::{Dispatcher, Value, VmError};

use jitbull_frontend::ast::{BinOp, UnOp};

/// A compiled function ready for the optimizing tier: the optimized MIR
/// plus a dense opcode index for guard lookups.
#[derive(Debug)]
pub struct CompiledCode {
    /// The optimized MIR (ids are dense; the pipeline ends with a
    /// mandatory renumber).
    pub mir: MirFunction,
    guards: Vec<GuardKind>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum GuardKind {
    None,
    BoundsCheck,
    UnboxArray,
    OtherGuard,
}

impl CompiledCode {
    /// Indexes the function for execution.
    pub fn new(mir: MirFunction) -> Self {
        let mut guards = vec![GuardKind::None; mir.id_bound() as usize];
        for b in &mir.blocks {
            for i in b.iter_all() {
                let kind = match &i.op {
                    MOpcode::BoundsCheck => GuardKind::BoundsCheck,
                    MOpcode::Unbox(jitbull_mir::TypeHint::Array) => GuardKind::UnboxArray,
                    op if op.is_guard() => GuardKind::OtherGuard,
                    _ => GuardKind::None,
                };
                if (i.id.0 as usize) < guards.len() {
                    guards[i.id.0 as usize] = kind;
                }
            }
        }
        CompiledCode { mir, guards }
    }

    fn guard_kind(&self, id: InstrId) -> GuardKind {
        self.guards
            .get(id.0 as usize)
            .copied()
            .unwrap_or(GuardKind::None)
    }
}

fn cmp_binop(c: CmpOp) -> BinOp {
    match c {
        CmpOp::Eq => BinOp::Eq,
        CmpOp::Ne => BinOp::Ne,
        CmpOp::StrictEq => BinOp::StrictEq,
        CmpOp::StrictNe => BinOp::StrictNe,
        CmpOp::Lt => BinOp::Lt,
        CmpOp::Le => BinOp::Le,
        CmpOp::Gt => BinOp::Gt,
        CmpOp::Ge => BinOp::Ge,
    }
}

fn const_value(c: &ConstVal) -> Value {
    match c {
        ConstVal::Number(n) => Value::Number(*n),
        ConstVal::Str(s) => Value::Str(s.clone()),
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::Undefined => Value::Undefined,
        ConstVal::Null => Value::Null,
        ConstVal::Func(f) => Value::Function(*f),
    }
}

/// Executes one invocation of optimized code.
///
/// # Errors
///
/// Propagates [`VmError`]s, including crashes from wild raw accesses.
pub fn run(
    code: &CompiledCode,
    rt: &mut Runtime,
    module: &Module,
    this: Value,
    args: &[Value],
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    rt.enter_call()?;
    let result = run_inner(code, rt, module, this, args, dispatcher);
    rt.exit_call();
    result
}

fn run_inner(
    code: &CompiledCode,
    rt: &mut Runtime,
    module: &Module,
    this: Value,
    args: &[Value],
    dispatcher: &mut dyn Dispatcher,
) -> Result<Value, VmError> {
    let bound = code.mir.id_bound() as usize;
    let mut values: Vec<Value> = vec![Value::Undefined; bound];
    let mut check_ok: Vec<bool> = vec![true; bound];
    let mut cur = jitbull_mir::BlockId(0);
    let mut prev: Option<jitbull_mir::BlockId> = None;

    'blocks: loop {
        let block = code.mir.block(cur);
        // Resolve phis for the edge we arrived on (two-phase so that phis
        // reading other phis see pre-edge values).
        if let Some(p) = prev {
            if !block.phis.is_empty() {
                let j = block
                    .phi_preds
                    .iter()
                    .position(|&pp| pp == p)
                    .ok_or_else(|| VmError::Type(format!("phi edge {p} -> {cur} missing")))?;
                let staged: Vec<(InstrId, Value)> = block
                    .phis
                    .iter()
                    .map(|phi| (phi.id, values[phi.operands[j].0 as usize].clone()))
                    .collect();
                for (id, v) in staged {
                    rt.consume_op(ION_COST)?;
                    values[id.0 as usize] = v;
                }
            }
        }
        for i in &block.instrs {
            rt.consume_op(ION_COST)?;
            macro_rules! val {
                ($id:expr) => {
                    values[$id.0 as usize].clone()
                };
            }
            macro_rules! set {
                ($v:expr) => {
                    values[i.id.0 as usize] = $v
                };
            }
            match &i.op {
                MOpcode::Parameter(k) => {
                    set!(args.get(*k as usize).cloned().unwrap_or(Value::Undefined))
                }
                MOpcode::This => set!(this.clone()),
                MOpcode::Constant(c) => set!(const_value(c)),
                MOpcode::Phi => {
                    return Err(VmError::Type("phi outside phi list".into()));
                }
                MOpcode::Goto(b) => {
                    prev = Some(cur);
                    cur = *b;
                    continue 'blocks;
                }
                MOpcode::Test {
                    then_block,
                    else_block,
                } => {
                    prev = Some(cur);
                    cur = if val!(i.operands[0]).truthy() {
                        *then_block
                    } else {
                        *else_block
                    };
                    continue 'blocks;
                }
                MOpcode::Return => return Ok(val!(i.operands[0])),
                MOpcode::Add
                | MOpcode::Sub
                | MOpcode::Mul
                | MOpcode::Div
                | MOpcode::Mod
                | MOpcode::BitAnd
                | MOpcode::BitOr
                | MOpcode::BitXor
                | MOpcode::Lsh
                | MOpcode::Rsh
                | MOpcode::Ursh => {
                    let op = match i.op {
                        MOpcode::Add => BinOp::Add,
                        MOpcode::Sub => BinOp::Sub,
                        MOpcode::Mul => BinOp::Mul,
                        MOpcode::Div => BinOp::Div,
                        MOpcode::Mod => BinOp::Mod,
                        MOpcode::BitAnd => BinOp::BitAnd,
                        MOpcode::BitOr => BinOp::BitOr,
                        MOpcode::BitXor => BinOp::BitXor,
                        MOpcode::Lsh => BinOp::Shl,
                        MOpcode::Rsh => BinOp::Shr,
                        _ => BinOp::Ushr,
                    };
                    set!(eval_binop(op, &val!(i.operands[0]), &val!(i.operands[1])));
                }
                MOpcode::Compare(c) => {
                    set!(eval_binop(
                        cmp_binop(*c),
                        &val!(i.operands[0]),
                        &val!(i.operands[1])
                    ));
                }
                MOpcode::BitNot => set!(eval_unop(UnOp::BitNot, &val!(i.operands[0]))),
                MOpcode::Neg => set!(eval_unop(UnOp::Neg, &val!(i.operands[0]))),
                MOpcode::Not => set!(eval_unop(UnOp::Not, &val!(i.operands[0]))),
                MOpcode::ToNumber => set!(eval_unop(UnOp::Plus, &val!(i.operands[0]))),
                MOpcode::TypeOf => set!(eval_unop(UnOp::Typeof, &val!(i.operands[0]))),
                MOpcode::Call(_) => {
                    let callee = val!(i.operands[0]);
                    let call_args: Vec<Value> = i.operands[1..].iter().map(|o| val!(o)).collect();
                    set!(invoke_value(
                        rt,
                        module,
                        callee,
                        Value::Undefined,
                        call_args,
                        dispatcher
                    )?);
                }
                MOpcode::CallMethod(_) => {
                    let base = val!(i.operands[0]);
                    let callee = val!(i.operands[1]);
                    let call_args: Vec<Value> = i.operands[2..].iter().map(|o| val!(o)).collect();
                    set!(invoke_value(
                        rt, module, callee, base, call_args, dispatcher
                    )?);
                }
                MOpcode::New(_) => {
                    let callee = val!(i.operands[0]);
                    let call_args: Vec<Value> = i.operands[1..].iter().map(|o| val!(o)).collect();
                    let obj = Value::Object(rt.alloc_object());
                    invoke_value(rt, module, callee, obj.clone(), call_args, dispatcher)?;
                    set!(obj);
                }
                MOpcode::NewArray(_) => {
                    let items: Vec<Value> = i.operands.iter().map(|o| val!(o)).collect();
                    set!(Value::Array(rt.heap.alloc_array_from(items)));
                }
                MOpcode::NewArrayN => {
                    let n = val!(i.operands[0]).to_number();
                    let n = if n.is_finite() && n >= 0.0 {
                        n as usize
                    } else {
                        0
                    };
                    set!(Value::Array(rt.heap.alloc_array(n, n, Value::Undefined)));
                }
                MOpcode::NewObject => set!(Value::Object(rt.alloc_object())),
                MOpcode::BoundsCheck => {
                    let idx = val!(i.operands[0]).to_number();
                    let len = val!(i.operands[1]).to_number();
                    check_ok[i.id.0 as usize] =
                        idx >= 0.0 && idx.fract() == 0.0 && idx < len && idx.is_finite();
                    set!(Value::Number(idx));
                }
                MOpcode::TypeGuard(hint) | MOpcode::Unbox(hint) => {
                    let v = val!(i.operands[0]);
                    let ok = match hint {
                        jitbull_mir::TypeHint::Number => matches!(v, Value::Number(_)),
                        jitbull_mir::TypeHint::Int32 => {
                            matches!(v, Value::Number(n) if n.fract() == 0.0)
                        }
                        jitbull_mir::TypeHint::Bool => matches!(v, Value::Bool(_)),
                        jitbull_mir::TypeHint::Str => matches!(v, Value::Str(_)),
                        jitbull_mir::TypeHint::Array => matches!(v, Value::Array(_)),
                        jitbull_mir::TypeHint::Object => matches!(v, Value::Object(_)),
                    };
                    check_ok[i.id.0 as usize] = ok;
                    set!(v);
                }
                MOpcode::InitializedLength | MOpcode::ArrayLength => {
                    let base = val!(i.operands[0]);
                    let out = match &base {
                        Value::Array(a) => Value::Number(rt.heap.length(*a) as f64),
                        Value::Str(s) => Value::Number(s.chars().count() as f64),
                        Value::Object(o) => rt.object(*o).get("length"),
                        // Type confusion after a dropped unbox: the
                        // number is a "pointer" and its length header is
                        // whatever that cell holds.
                        Value::Number(k) if code.guard_kind(i.operands[0]) == GuardKind::None => {
                            if *k >= 0.0 && k.is_finite() {
                                let v = crash_on_wild(rt, rt_raw_read(rt, *k as usize))?;
                                Value::Number(v.to_number())
                            } else {
                                return wild(rt, format!("wild length read at {k}"));
                            }
                        }
                        _ => Value::Number(0.0),
                    };
                    set!(out);
                }
                MOpcode::SetArrayLength => {
                    let base = val!(i.operands[0]);
                    let v = val!(i.operands[1]);
                    jitbull_vm::interp::set_length(rt, &base, &v)?;
                    set!(v);
                }
                MOpcode::LoadElement => {
                    set!(load_element(
                        code,
                        rt,
                        &values,
                        &check_ok,
                        i.operands[0],
                        i.operands[1]
                    )?);
                }
                MOpcode::StoreElement => {
                    let v = val!(i.operands[2]);
                    store_element(
                        code,
                        rt,
                        &values,
                        &check_ok,
                        i.operands[0],
                        i.operands[1],
                        v.clone(),
                    )?;
                    set!(v);
                }
                MOpcode::LoadProperty(name) => {
                    let base = val!(i.operands[0]);
                    set!(jitbull_vm::interp::get_prop(rt, &base, name)?);
                }
                MOpcode::StoreProperty(name) => {
                    let base = val!(i.operands[0]);
                    let v = val!(i.operands[1]);
                    jitbull_vm::interp::set_prop(rt, &base, Rc::clone(name), v.clone())?;
                    set!(v);
                }
                MOpcode::LoadGlobal(slot) => set!(rt.globals[*slot as usize].clone()),
                MOpcode::StoreGlobal(slot) => {
                    rt.globals[*slot as usize] = val!(i.operands[0]);
                }
                MOpcode::Print => {
                    let v = val!(i.operands[0]);
                    let line = v.to_string();
                    rt.printed.push(line);
                }
                MOpcode::MathFunction(mf) => {
                    let call_args: Vec<Value> = i.operands.iter().map(|o| val!(o)).collect();
                    set!(eval_math(rt, *mf, &call_args));
                }
                MOpcode::Intrinsic(m, _) => {
                    let recv = val!(i.operands[0]);
                    let call_args: Vec<Value> = i.operands[1..].iter().map(|o| val!(o)).collect();
                    set!(eval_intrinsic(rt, *m, &recv, &call_args)?);
                }
                MOpcode::FromCharCode => {
                    let n = val!(i.operands[0]).to_number();
                    let c = char::from_u32(n as u32).unwrap_or('\u{FFFD}');
                    set!(Value::str(c.to_string()));
                }
            }
        }
        return Err(VmError::Type(
            "block fell through without terminator".into(),
        ));
    }
}

fn rt_raw_read(rt: &Runtime, addr: usize) -> Result<Value, VmError> {
    rt.heap.raw_read(addr)
}

fn crash_on_wild(rt: &mut Runtime, r: Result<Value, VmError>) -> Result<Value, VmError> {
    match r {
        Err(VmError::Crash(msg)) => {
            rt.note_crash(&msg);
            Err(VmError::Crash(msg))
        }
        other => other,
    }
}

fn wild(rt: &mut Runtime, msg: String) -> Result<Value, VmError> {
    rt.note_crash(&msg);
    Err(VmError::Crash(msg))
}

fn guard_state(
    code: &CompiledCode,
    check_ok: &[bool],
    id: InstrId,
    expected: GuardKind,
) -> Option<bool> {
    if code.guard_kind(id) == expected {
        Some(check_ok[id.0 as usize])
    } else {
        None
    }
}

fn load_element(
    code: &CompiledCode,
    rt: &mut Runtime,
    values: &[Value],
    check_ok: &[bool],
    base_id: InstrId,
    idx_id: InstrId,
) -> Result<Value, VmError> {
    let base = values[base_id.0 as usize].clone();
    let idx = values[idx_id.0 as usize].clone();
    let base_guard = guard_state(code, check_ok, base_id, GuardKind::UnboxArray);
    let idx_guard = guard_state(code, check_ok, idx_id, GuardKind::BoundsCheck);
    match &base {
        Value::Array(a) => {
            if base_guard == Some(false) || idx_guard == Some(false) {
                // Bailout path: full interpreter semantics.
                return jitbull_vm::interp::get_elem(rt, &base, &idx);
            }
            // Guarded-and-passing, or unguarded (check removed): raw.
            raw_elem_read(rt, *a, idx.to_number())
        }
        Value::Number(k) if base_guard.is_none() => {
            // Type confusion: unbox removed, number dereferenced as a heap
            // address.
            let addr = *k + 2.0 + idx.to_number();
            if addr >= 0.0 && addr.is_finite() {
                crash_on_wild(rt, rt_raw_read(rt, addr as usize))
            } else {
                wild(rt, format!("wild read through confused pointer {k}"))
            }
        }
        _ => jitbull_vm::interp::get_elem(rt, &base, &idx),
    }
}

fn store_element(
    code: &CompiledCode,
    rt: &mut Runtime,
    values: &[Value],
    check_ok: &[bool],
    base_id: InstrId,
    idx_id: InstrId,
    value: Value,
) -> Result<(), VmError> {
    let base = values[base_id.0 as usize].clone();
    let idx = values[idx_id.0 as usize].clone();
    let base_guard = guard_state(code, check_ok, base_id, GuardKind::UnboxArray);
    let idx_guard = guard_state(code, check_ok, idx_id, GuardKind::BoundsCheck);
    match &base {
        Value::Array(a) => {
            if base_guard == Some(false) || idx_guard == Some(false) {
                return jitbull_vm::interp::set_elem(rt, &base, &idx, value);
            }
            raw_elem_write(rt, *a, idx.to_number(), value)
        }
        Value::Number(k) if base_guard.is_none() => {
            let addr = *k + 2.0 + idx.to_number();
            if addr >= 0.0 && addr.is_finite() {
                match rt.heap.raw_write(addr as usize, value) {
                    Err(VmError::Crash(msg)) => {
                        rt.note_crash(&msg);
                        Err(VmError::Crash(msg))
                    }
                    other => other,
                }
            } else {
                wild(rt, format!("wild write through confused pointer {k}")).map(|_| ())
            }
        }
        _ => jitbull_vm::interp::set_elem(rt, &base, &idx, value),
    }
}

fn raw_elem_read(
    rt: &mut Runtime,
    arr: jitbull_vm::value::ArrId,
    idx: f64,
) -> Result<Value, VmError> {
    if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
        // Compiled fast paths only exist for integer indexes.
        return rt.heap.get_elem(arr, idx);
    }
    let addr = rt.heap.elem_addr(arr, idx as usize);
    crash_on_wild(rt, rt_raw_read(rt, addr))
}

fn raw_elem_write(
    rt: &mut Runtime,
    arr: jitbull_vm::value::ArrId,
    idx: f64,
    value: Value,
) -> Result<(), VmError> {
    if !(idx >= 0.0 && idx.fract() == 0.0 && idx.is_finite()) {
        return rt.heap.set_elem(arr, idx, value);
    }
    let addr = rt.heap.elem_addr(arr, idx as usize);
    match rt.heap.raw_write(addr, value) {
        Err(VmError::Crash(msg)) => {
            rt.note_crash(&msg);
            Err(VmError::Crash(msg))
        }
        other => other,
    }
}

//! # jitbull-workloads — the harmless-application corpus
//!
//! The paper evaluates JITBULL's false-positive rate and overhead on the
//! Octane suite plus two micro-benchmarks. Octane's real sources need a
//! full JS engine, so this crate provides *analogues*: minijs programs
//! exercising the same computational shapes (OO scheduling, constraint
//! propagation, stream ciphers with masked indexes, floating-point ray
//! math, stencil grids, pointer-chasing trees, bit-stream decoding,
//! particle physics, many-small-functions, tokenization), sized so their
//! hot functions cross the optimizing-JIT threshold (1500 invocations)
//! many times over.
//!
//! These workloads are what Figures 4–6 of the paper are regenerated
//! from; see `jitbull-bench`.
//!
//! All programs are deterministic and print a final checksum, so
//! correctness across execution tiers (interpreter / baseline / Ion /
//! Ion-with-disabled-passes) is testable by output comparison.

pub mod runner;
pub mod suite;

pub use runner::{run_workload, run_workload_observed, Measurement};
pub use suite::{all_workloads, microbenches, octane_analogues, serving_mix, workload, Workload};

//! The workload sources.

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (matches the Octane benchmark it is the analogue of).
    pub name: &'static str,
    /// Complete minijs source; prints exactly one checksum line.
    pub source: String,
}

/// Looks a workload up by name.
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// The Octane-analogue programs, in the order the paper's figures list
/// them.
pub fn octane_analogues() -> Vec<Workload> {
    vec![
        box2d(),
        crypto(),
        deltablue(),
        earleyboyer(),
        gameboy(),
        navierstokes(),
        pdfjs(),
        raytrace(),
        richards(),
        splay(),
        typescript(),
        codeload(),
    ]
}

/// The paper's two micro-benchmarks (§VI-A-b): an arithmetic loop and the
/// same with array-size manipulation.
pub fn microbenches() -> Vec<Workload> {
    vec![microbench1(), microbench2()]
}

/// Micro-benchmarks followed by the Octane analogues.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = microbenches();
    v.extend(octane_analogues());
    v
}

/// Request-sized scripts for the serving pool (`jitbull-pool`): each is a
/// few hundred invocations — long enough to cross the (fast-test) tier
/// thresholds and exercise the guard, short enough that a pool serves
/// thousands per second. `ServeArray` repeats Microbench2's array-length
/// manipulation, so installing CVE-2019-17026's DNA mid-traffic flips its
/// verdict — the hot-swap demo in `repro -- serve` relies on that.
pub fn serving_mix() -> Vec<Workload> {
    vec![
        serve_arith(),
        serve_array(),
        serve_fields(),
        serve_branchy(),
    ]
}

fn serve_arith() -> Workload {
    Workload {
        name: "ServeArith",
        source: r#"
function sa(a, b) {
  var t = 0;
  for (var i = 0; i < 40; i++) { t = t + a * i - b; }
  return t;
}
var r = 0;
for (var k = 0; k < 60; k++) { r = sa(k, 3); }
print(r);
"#
        .to_owned(),
    }
}

fn serve_array() -> Workload {
    Workload {
        name: "ServeArray",
        source: r#"
// Microbench2's shape at request size: shrink-and-regrow next to checked
// element writes — the IR pattern CVE-2019-17026's demonstrator has.
function sv(arr, n) {
  arr.length = 4;
  arr.length = 12;
  var t = 0;
  for (var i = 0; i < arr.length; i++) {
    arr[i] = n + i;
    t = t + arr[i];
  }
  return t;
}
var a = new Array(12);
var r = 0;
for (var k = 0; k < 60; k++) { r = sv(a, k); }
print(r);
"#
        .to_owned(),
    }
}

fn serve_fields() -> Workload {
    Workload {
        name: "ServeFields",
        source: r#"
function Point(x, y) {
  this.x = x;
  this.y = y;
}
function dist2(p) {
  return p.x * p.x + p.y * p.y;
}
var t = 0;
for (var k = 0; k < 60; k++) {
  var p = new Point(k, k + 1);
  t = (t + dist2(p)) % 1000000007;
}
print(t);
"#
        .to_owned(),
    }
}

fn serve_branchy() -> Workload {
    Workload {
        name: "ServeBranchy",
        source: r#"
function sb(n) {
  var t = 0;
  for (var i = 0; i < 50; i++) {
    if ((i & 3) == 0) { t = t + n; } else { t = t - 1; }
  }
  return t;
}
var r = 0;
for (var k = 0; k < 60; k++) { r = r + sb(k); }
print(r);
"#
        .to_owned(),
    }
}

fn microbench1() -> Workload {
    Workload {
        name: "Microbench1",
        source: r#"
// Arithmetic on variables within a for loop (paper §VI-A-b).
function mb1(a, b) {
  var t = 0;
  for (var i = 0; i < 40; i++) { t = t + a * i - b; }
  return t;
}
var r = 0;
for (var k = 0; k < 2600; k++) { r = mb1(k, 3); }
print(r);
"#
        .to_owned(),
    }
}

fn microbench2() -> Workload {
    Workload {
        name: "Microbench2",
        source: r#"
// Same, but manipulates the size of an array (paper §VI-A-b). This is
// the honest false positive: shrinking and re-growing `arr.length` next
// to checked element writes is exactly the IR shape CVE-2019-17026's
// demonstrator has.
function mb2(arr, n) {
  arr.length = 4;
  arr.length = 12;
  var t = 0;
  for (var i = 0; i < arr.length; i++) {
    arr[i] = n + i;
    t = t + arr[i];
  }
  return t;
}
var a = new Array(12);
var r = 0;
for (var k = 0; k < 2600; k++) { r = mb2(a, k); }
print(r);
"#
        .to_owned(),
    }
}

fn richards() -> Workload {
    Workload {
        name: "Richards",
        source: r#"
// OS-scheduler simulation analogue: objects with method dispatch.
function Task(id, priority) {
  this.id = id;
  this.pri = priority;
  this.work = 0;
  this.run = runTask;
}
function runTask(units) {
  this.work = this.work + units;
  return this.work;
}
function pickUnits(round, i) {
  var u = 1 + (round & 3);
  if ((round + i) % 5 == 0) { u = u + 1; }
  return u;
}
function runnable(round, i) {
  return (round + i) % 3 != 0;
}
function account(total, v, round) {
  return (total + v + (round & 1)) % 1000000007;
}
function schedule(tasks, round) {
  var total = 0;
  for (var i = 0; i < tasks.length; i++) {
    var t = tasks[i];
    if (runnable(round, i)) {
      total = account(total, t.run(pickUnits(round, i)), round);
    }
  }
  return total;
}
var tasks = [new Task(0, 1), new Task(1, 2), new Task(2, 3),
             new Task(3, 1), new Task(4, 2), new Task(5, 3)];
var acc = 0;
for (var r = 0; r < 2400; r++) { acc = (acc + schedule(tasks, r)) % 1000000007; }
print(acc);
"#
        .to_owned(),
    }
}

fn deltablue() -> Workload {
    Workload {
        name: "DeltaBlue",
        source: r#"
// One-way constraint-propagation analogue.
function makeChain(n) {
  var v = new Array(n);
  for (var i = 0; i < n; i++) { v[i] = 0; }
  return v;
}
function stayStrength(i) {
  return i & 1;
}
function editValue(vals, strength) {
  vals[0] = strength;
  return vals[0];
}
function propagate(vals, strength) {
  editValue(vals, strength);
  for (var i = 1; i < vals.length; i++) {
    vals[i] = vals[i - 1] + stayStrength(i);
  }
  return vals[vals.length - 1];
}
function planValue(vals, rounds) {
  var out = 0;
  for (var r = 0; r < rounds; r++) { out = propagate(vals, r & 7); }
  return out;
}
var chain = makeChain(24);
var out = 0;
for (var r = 0; r < 2200; r++) { out = out + planValue(chain, 1); }
print(out);
"#
        .to_owned(),
    }
}

fn crypto() -> Workload {
    Workload {
        name: "Crypto",
        source: r#"
// RC4-style stream cipher analogue: masked indexes into a 256-entry
// s-box (all masks keep accesses in bounds).
function keyByte(key, i) {
  return key[i & 15];
}
function swapEntries(sbox, i, j) {
  var tmp = sbox[i];
  sbox[i] = sbox[j];
  sbox[j] = tmp;
  return sbox[i];
}
function mixKey(sbox, key) {
  var j = 0;
  for (var i = 0; i < 256; i++) {
    j = (j + sbox[i] + keyByte(key, i)) & 255;
    swapEntries(sbox, i, j);
  }
  return sbox[0];
}
function stream(sbox, n) {
  var out = 0;
  var i = 0;
  var j = 0;
  for (var k = 0; k < n; k++) {
    i = (i + 1) & 255;
    j = (j + sbox[i]) & 255;
    out = (out + sbox[(sbox[i] + sbox[j]) & 255]) & 65535;
  }
  return out;
}
var sbox = new Array(256);
for (var i = 0; i < 256; i++) { sbox[i] = i; }
var key = new Array(16);
for (var i = 0; i < 16; i++) { key[i] = (i * 7 + 3) & 255; }
function fold(sum, v) {
  return (sum + v) & 1048575;
}
var sum = 0;
for (var r = 0; r < 1900; r++) {
  mixKey(sbox, key);
  sum = fold(sum, stream(sbox, 48));
}
print(sum);
"#
        .to_owned(),
    }
}

fn raytrace() -> Workload {
    Workload {
        name: "RayTrace",
        source: r#"
// Sphere-intersection analogue: floating-point heavy, branchy.
function discriminant(ox, oy, dx, dy) {
  var dz = 1;
  var b = 2 * (ox * dx + oy * dy + (0 - 5) * dz);
  var c = ox * ox + oy * oy + 25 - 1;
  return b * b - 4 * c;
}
function halfB(ox, oy, dx, dy) {
  return 0 - (ox * dx + oy * dy - 5);
}
function shade(hit, frame) {
  return hit * 0.5 + frame * 0.001;
}
function traceRay(ox, oy, dx, dy, frame) {
  var disc = discriminant(ox, oy, dx, dy);
  if (disc < 0) { return 0; }
  var s = Math.sqrt(disc);
  return shade(2 * halfB(ox, oy, dx, dy) - s, frame);
}
function sampleAt(x, y, frame) {
  return traceRay((x - 4) * 0.25, (y - 4) * 0.25, 0.1, 0.1, frame);
}
function render(w, h, frame) {
  var acc = 0;
  for (var y = 0; y < h; y++) {
    for (var x = 0; x < w; x++) {
      acc = acc + sampleAt(x, y, frame);
    }
  }
  return acc;
}
var total = 0;
for (var f = 0; f < 2000; f++) { total = total + render(6, 6, f); }
print(Math.floor(total));
"#
        .to_owned(),
    }
}

fn navierstokes() -> Workload {
    Workload {
        name: "NavierStokes",
        source: r#"
// Fluid-grid stencil analogue over flat arrays.
function stencil(src, idx, w) {
  return (src[idx] + src[idx - 1] + src[idx + 1] + src[idx - w] + src[idx + w]) * 0.2;
}
function diffuseRow(src, dst, y, w) {
  for (var x = 1; x < w - 1; x++) {
    var idx = y * w + x;
    dst[idx] = stencil(src, idx, w);
  }
  return dst[y * w + 1];
}
function setBoundary(dst, w, h) {
  for (var x = 0; x < w; x++) {
    dst[x] = 0;
    dst[(h - 1) * w + x] = 0;
  }
  return dst[0];
}
function diffuse(src, dst, w, h) {
  for (var y = 1; y < h - 1; y++) {
    diffuseRow(src, dst, y, w);
  }
  setBoundary(dst, w, h);
  return dst[w + 1];
}
var W = 16;
var H = 16;
var a = new Array(256);
var b = new Array(256);
for (var i = 0; i < 256; i++) { a[i] = i % 7; b[i] = 0; }
var out = 0;
for (var s = 0; s < 1900; s++) {
  out = diffuse(a, b, W, H);
  var t = a;
  a = b;
  b = t;
}
print(Math.floor(out * 1000));
"#
        .to_owned(),
    }
}

fn splay() -> Workload {
    Workload {
        name: "Splay",
        source: r#"
// Binary-search-tree analogue: object allocation and pointer chasing.
function Node(key) {
  this.key = key;
  this.left = null;
  this.right = null;
}
function insert(root, key) {
  if (root == null) { return new Node(key); }
  var cur = root;
  while (true) {
    if (key < cur.key) {
      if (cur.left == null) { cur.left = new Node(key); break; }
      cur = cur.left;
    } else if (key > cur.key) {
      if (cur.right == null) { cur.right = new Node(key); break; }
      cur = cur.right;
    } else { break; }
  }
  return root;
}
function lookup(root, key) {
  var cur = root;
  var depth = 0;
  while (cur != null) {
    depth = depth + 1;
    if (key == cur.key) { return depth; }
    if (key < cur.key) { cur = cur.left; } else { cur = cur.right; }
  }
  return 0 - depth;
}
function treeMin(root) {
  var cur = root;
  var k = 0;
  while (cur != null) { k = cur.key; cur = cur.left; }
  return k;
}
function treeMax(root) {
  var cur = root;
  var k = 0;
  while (cur != null) { k = cur.key; cur = cur.right; }
  return k;
}
function nextSeed(seed) {
  return (seed * 137 + 101) % 9973;
}
var root = null;
var seed = 1;
var acc = 0;
for (var i = 0; i < 2000; i++) {
  seed = nextSeed(seed);
  root = insert(root, seed % 997);
  acc = acc + lookup(root, (seed * 3) % 997) + treeMin(root) - treeMax(root);
}
print(acc);
"#
        .to_owned(),
    }
}

fn pdfjs() -> Workload {
    Workload {
        name: "Pdfjs",
        source: r#"
// Bit-stream decoding analogue (variable-width reads from a byte array).
function bitOf(bytes, p) {
  var rem = p % 8;
  var byteIdx = (p - rem) / 8;
  return (bytes[byteIdx] >> (7 - rem)) & 1;
}
function widthOf(sum) {
  return 1 + (sum & 3);
}
function readBits(bytes, bitpos, count) {
  var v = 0;
  for (var i = 0; i < count; i++) {
    v = v * 2 + bitOf(bytes, bitpos + i);
  }
  return v;
}
function decode(bytes, n) {
  var pos = 0;
  var sum = 0;
  var limit = bytes.length * 8 - 8;
  for (var i = 0; i < n; i++) {
    var w = widthOf(sum);
    if (pos + w > limit) { pos = 0; }
    sum = (sum + readBits(bytes, pos, w)) & 65535;
    pos = pos + w;
  }
  return sum;
}
var data = new Array(64);
for (var i = 0; i < 64; i++) { data[i] = (i * 37 + 11) & 255; }
var result = 0;
for (var r = 0; r < 1900; r++) { result = (result + decode(data, 20)) & 1048575; }
print(result);
"#
        .to_owned(),
    }
}

fn box2d() -> Workload {
    Workload {
        name: "Box2D",
        source: r#"
// Particle-physics analogue: parallel arrays, bouncing off walls.
function applyGravity(vy, n, g) {
  for (var i = 0; i < n; i++) { vy[i] = vy[i] + g; }
  return vy[0];
}
function integrate(px, py, vx, vy, n) {
  for (var i = 0; i < n; i++) {
    px[i] = px[i] + vx[i];
    py[i] = py[i] + vy[i];
  }
  return px[0];
}
function collideWalls(px, py, vx, vy, n) {
  var hits = 0;
  for (var i = 0; i < n; i++) {
    if (py[i] > 100) { py[i] = 100; vy[i] = 0 - vy[i] * 0.5; hits = hits + 1; }
    if (px[i] < 0) { px[i] = 0; vx[i] = 0 - vx[i]; hits = hits + 1; }
    if (px[i] > 100) { px[i] = 100; vx[i] = 0 - vx[i]; hits = hits + 1; }
  }
  return hits;
}
function kineticEnergy(vx, vy, n) {
  var energy = 0;
  for (var i = 0; i < n; i++) {
    energy = energy + vx[i] * vx[i] + vy[i] * vy[i];
  }
  return energy;
}
function stepParticles(px, py, vx, vy, n, g) {
  applyGravity(vy, n, g);
  integrate(px, py, vx, vy, n);
  collideWalls(px, py, vx, vy, n);
  return kineticEnergy(vx, vy, n);
}
var N = 40;
var px = new Array(N);
var py = new Array(N);
var vx = new Array(N);
var vy = new Array(N);
for (var i = 0; i < N; i++) {
  px[i] = (i * 13) % 100;
  py[i] = (i * 29) % 100;
  vx[i] = ((i % 5) - 2) * 0.5;
  vy[i] = 0;
}
var e = 0;
for (var s = 0; s < 1900; s++) { e = stepParticles(px, py, vx, vy, N, 0.1); }
print(Math.floor(e));
"#
        .to_owned(),
    }
}

fn typescript() -> Workload {
    Workload {
        name: "TypeScript",
        source: r#"
// Tokenizer analogue: character classification over source text.
function isDigit(c) { return c >= 48 && c <= 57; }
function isAlpha(c) {
  return (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || c == 95;
}
function isIdentPart(c) { return isAlpha(c) || isDigit(c); }
function resetScratch(buf, n) {
  // Token scratch buffer reuse: shrink, then regrow and refill — the
  // everyday IR shape that resembles length-manipulating exploit code.
  buf.length = 0;
  buf.length = 8;
  for (var i = 0; i < 8; i++) { buf[i] = n + i; }
  return buf[0];
}
function tokenize(src) {
  var i = 0;
  var tokens = 0;
  var idents = 0;
  var nums = 0;
  var n = src.length;
  while (i < n) {
    var c = src.charCodeAt(i);
    if (isAlpha(c)) {
      idents = idents + 1;
      while (i < n && isIdentPart(src.charCodeAt(i))) {
        i = i + 1;
      }
    } else if (isDigit(c)) {
      nums = nums + 1;
      while (i < n && isDigit(src.charCodeAt(i))) { i = i + 1; }
    } else {
      i = i + 1;
    }
    tokens = tokens + 1;
  }
  return tokens * 1000 + idents * 10 + nums;
}
var program = "function foo12(bar, baz9) { var x_1 = 42; return bar + baz9 * x_1; } ";
var scratch = new Array(8);
var out = 0;
for (var r = 0; r < 1800; r++) {
  out = tokenize(program) + resetScratch(scratch, r & 7);
}
print(out);
"#
        .to_owned(),
    }
}

fn earleyboyer() -> Workload {
    Workload {
        name: "EarleyBoyer",
        source: r#"
// Symbolic list-processing analogue (cons cells, structural recursion).
function Cons(head, tail) {
  this.head = head;
  this.tail = tail;
}
function listLen(l) {
  var n = 0;
  var cur = l;
  while (cur != null) { n = n + 1; cur = cur.tail; }
  return n;
}
function buildList(n, seed) {
  var l = null;
  for (var i = 0; i < n; i++) { l = new Cons((seed + i * 7) % 23, l); }
  return l;
}
function sumList(l) {
  var t = 0;
  var cur = l;
  while (cur != null) { t = t + cur.head; cur = cur.tail; }
  return t;
}
function rewrite(l) {
  // One rewriting pass: x -> x*2+1 for odd heads, x/… keep even.
  var out = null;
  var cur = l;
  while (cur != null) {
    var h = cur.head;
    if (h % 2 == 1) { h = (h * 2 + 1) % 29; }
    out = new Cons(h, out);
    cur = cur.tail;
  }
  return out;
}
var acc = 0;
for (var r = 0; r < 1800; r++) {
  var l = buildList(10, r);
  l = rewrite(l);
  acc = (acc + sumList(l) * listLen(l)) % 1000003;
}
print(acc);
"#
        .to_owned(),
    }
}

fn gameboy() -> Workload {
    Workload {
        name: "Gameboy",
        source: r#"
// Byte-machine emulator analogue: opcode dispatch over a memory array.
function step(mem, regs, pc) {
  var op = mem[pc & 255];
  var a = op & 3;
  var b = (op >> 2) & 3;
  var kind = (op >> 4) & 7;
  if (kind == 0) { regs[a] = (regs[a] + regs[b]) & 255; }
  else if (kind == 1) { regs[a] = (regs[a] - regs[b]) & 255; }
  else if (kind == 2) { regs[a] = (regs[a] ^ regs[b]) & 255; }
  else if (kind == 3) { regs[a] = mem[regs[b] & 255]; }
  else if (kind == 4) { mem[regs[b] & 255] = regs[a]; }
  else if (kind == 5) { regs[a] = (regs[a] << 1) & 255; }
  else if (kind == 6) { if (regs[a] == 0) { return (pc + 2) & 255; } }
  else { regs[a] = (regs[a] + 1) & 255; }
  return (pc + 1) & 255;
}
function runFrame(mem, regs, steps) {
  var pc = 0;
  for (var i = 0; i < steps; i++) { pc = step(mem, regs, pc); }
  return regs[0] * 16777 + regs[1] * 257 + regs[2] * 3 + regs[3];
}
var mem = new Array(256);
for (var i = 0; i < 256; i++) { mem[i] = (i * 167 + 13) & 255; }
var regs = [1, 2, 3, 4];
var out = 0;
for (var f = 0; f < 1800; f++) { out = (out + runFrame(mem, regs, 40)) % 1000000007; }
print(out);
"#
        .to_owned(),
    }
}

fn codeload() -> Workload {
    // Many small functions, generated: stresses per-function compilation
    // (and, with JITBULL on, per-function DNA extraction).
    let mut src = String::from("// Many-small-functions analogue.\n");
    for i in 0..24 {
        src.push_str(&format!(
            "function unit{i}(x) {{ return (x * {m} + {a}) % 9973; }}\n",
            m = i * 2 + 3,
            a = i + 1
        ));
    }
    src.push_str("var acc = 0;\nfor (var r = 0; r < 1700; r++) {\n  var v = r;\n");
    for i in 0..24 {
        src.push_str(&format!("  v = unit{i}(v);\n"));
    }
    src.push_str("  acc = (acc + v) % 1000003;\n}\nprint(acc);\n");
    Workload {
        name: "CodeLoad",
        source: src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;

    #[test]
    fn all_workloads_parse() {
        let all = all_workloads();
        assert_eq!(all.len(), 14);
        for w in &all {
            parse_program(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn serving_mix_parses_and_prints() {
        let mix = serving_mix();
        assert_eq!(mix.len(), 4);
        for w in &mix {
            parse_program(&w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.source.contains("print("), "{} must print", w.name);
        }
        let mut names: Vec<&str> = mix.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("Crypto").is_some());
        assert!(workload("Microbench2").is_some());
        assert!(workload("NoSuch").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }
}

//! Running workloads under configurable engines and collecting the
//! measurements the paper's figures are built from.

use std::cell::RefCell;
use std::rc::Rc;

use jitbull::{CompareConfig, DnaDatabase, Guard};
use jitbull_jit::engine::{Engine, EngineConfig, EngineOutcome};
use jitbull_telemetry::Collector;
use jitbull_vm::VmError;

use crate::suite::Workload;

/// One workload run's results.
#[derive(Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// Checksum line(s) the program printed.
    pub printed: Vec<String>,
    /// Total simulated cycles (execution + compilation + analysis).
    pub cycles: u64,
    /// Executed operations across all tiers.
    pub ops: u64,
    /// Functions that reached the optimizing tier (`Nr_JIT`).
    pub nr_jit: usize,
    /// Functions with ≥1 pass disabled (`Nr_DisJIT`).
    pub nr_disjit: usize,
    /// Functions whose optimizing JIT was vetoed (`Nr_NoJIT`).
    pub nr_nojit: usize,
    /// Cycles JITBULL spent on extraction + comparison.
    pub analysis_cycles: u64,
}

impl Measurement {
    /// `%Pass Dis.` from the paper's Figure 4.
    pub fn pct_pass_disabled(&self) -> f64 {
        if self.nr_jit == 0 {
            0.0
        } else {
            self.nr_disjit as f64 * 100.0 / self.nr_jit as f64
        }
    }

    /// `%No JIT` from the paper's Figure 4.
    pub fn pct_nojit(&self) -> f64 {
        if self.nr_jit == 0 {
            0.0
        } else {
            self.nr_nojit as f64 * 100.0 / self.nr_jit as f64
        }
    }

    /// `%Safe Code` from the paper's Figure 4.
    pub fn pct_safe(&self) -> f64 {
        100.0 - self.pct_pass_disabled() - self.pct_nojit()
    }

    fn from_outcome(name: &'static str, out: EngineOutcome) -> Measurement {
        Measurement {
            name,
            printed: out.outcome.printed,
            cycles: out.outcome.cycles,
            ops: out.outcome.ops,
            nr_jit: out.nr_jit,
            nr_disjit: out.nr_disjit,
            nr_nojit: out.nr_nojit,
            analysis_cycles: out.analysis_cycles,
        }
    }
}

/// Runs one workload on an engine with the given configuration and an
/// optional JITBULL database.
///
/// # Errors
///
/// Propagates [`VmError`] — workloads are harmless, so any error is a
/// harness bug (crash-class errors would indicate a vulnerability model
/// breaking benign code).
pub fn run_workload(
    w: &Workload,
    config: EngineConfig,
    db: Option<DnaDatabase>,
) -> Result<Measurement, VmError> {
    run_inner(w, config, db, None)
}

/// Like [`run_workload`], with a telemetry collector attached to the
/// engine for the duration of the run.
///
/// # Errors
///
/// Same as [`run_workload`].
pub fn run_workload_observed(
    w: &Workload,
    config: EngineConfig,
    db: Option<DnaDatabase>,
    collector: Rc<RefCell<dyn Collector>>,
) -> Result<Measurement, VmError> {
    run_inner(w, config, db, Some(collector))
}

fn run_inner(
    w: &Workload,
    config: EngineConfig,
    db: Option<DnaDatabase>,
    collector: Option<Rc<RefCell<dyn Collector>>>,
) -> Result<Measurement, VmError> {
    let mut engine = match db {
        Some(db) => {
            let guard = Guard::with_comparator(db, CompareConfig::default(), config.comparator);
            Engine::with_guard(config, guard)
        }
        None => Engine::new(config),
    };
    if let Some(c) = collector {
        engine.set_collector(c);
    }
    let out = engine.run_source_with(&w.source)?;
    if out.outcome.status.is_compromised() {
        return Err(VmError::Crash(format!(
            "harmless workload {} reported {:?}",
            w.name, out.outcome.status
        )));
    }
    Ok(Measurement::from_outcome(w.name, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_workloads;
    use jitbull_jit::VulnConfig;

    /// Every workload must print the same checksum on every tier
    /// configuration — including on an engine that ships all eight
    /// vulnerabilities (benign code must not be miscompiled into wrong
    /// answers by the *triggers* firing spuriously at runtime).
    #[test]
    fn workloads_agree_across_interpreter_and_jit() {
        for w in all_workloads() {
            let interp = run_workload(
                &w,
                EngineConfig {
                    jit_enabled: false,
                    ..Default::default()
                },
                None,
            )
            .unwrap_or_else(|e| panic!("{} interp: {e}", w.name));
            let jit = run_workload(&w, EngineConfig::default(), None)
                .unwrap_or_else(|e| panic!("{} jit: {e}", w.name));
            assert_eq!(
                interp.printed, jit.printed,
                "{}: interpreter vs JIT output mismatch",
                w.name
            );
            assert!(!interp.printed.is_empty(), "{} printed nothing", w.name);
            assert!(
                jit.cycles < interp.cycles,
                "{}: JIT ({}) not faster than interpreter ({})",
                w.name,
                jit.cycles,
                interp.cycles
            );
        }
    }

    #[test]
    fn workloads_survive_a_fully_vulnerable_engine() {
        for w in all_workloads() {
            let vulnerable = run_workload(
                &w,
                EngineConfig {
                    vulns: VulnConfig::all(),
                    ..Default::default()
                },
                None,
            )
            .unwrap_or_else(|e| panic!("{} vulnerable engine: {e}", w.name));
            let clean = run_workload(&w, EngineConfig::default(), None).unwrap();
            assert_eq!(
                vulnerable.printed, clean.printed,
                "{}: wrong answer on vulnerable engine",
                w.name
            );
        }
    }

    #[test]
    fn every_workload_jits_at_least_one_function() {
        for w in all_workloads() {
            let m = run_workload(&w, EngineConfig::default(), None).unwrap();
            assert!(
                m.nr_jit >= 1,
                "{} never reached the optimizing tier",
                w.name
            );
            assert_eq!(m.nr_disjit, 0);
            assert_eq!(m.nr_nojit, 0);
        }
    }

    #[test]
    fn percentage_arithmetic() {
        let m = Measurement {
            name: "t",
            printed: vec![],
            cycles: 0,
            ops: 0,
            nr_jit: 10,
            nr_disjit: 3,
            nr_nojit: 1,
            analysis_cycles: 0,
        };
        assert!((m.pct_pass_disabled() - 30.0).abs() < 1e-9);
        assert!((m.pct_nojit() - 10.0).abs() < 1e-9);
        assert!((m.pct_safe() - 60.0).abs() < 1e-9);
    }
}

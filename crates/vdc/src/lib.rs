//! # jitbull-vdc — vulnerability demonstrator codes
//!
//! The minijs proof-of-concept exploits for the eight CVEs modeled by
//! `jitbull-jit`, playing the role of the public PoCs the paper collected
//! (CVE-2019-9791 \[tunz\], CVE-2019-9810 \[xuechiyaobai\],
//! CVE-2019-11707 \[vigneshsrao\], CVE-2019-17026 \[lsw29475 / maxpl0it\])
//! and the four it re-implemented from Bugzilla descriptions for the
//! scalability study.
//!
//! Each [`Vdc`] is a complete script that:
//!
//! 1. warms its trigger function past the optimizing-JIT threshold with
//!    benign inputs,
//! 2. lets the buggy pass mis-compile it,
//! 3. drives the mis-compiled code to corrupt the simulated heap, and
//! 4. ends in the CVE's public outcome — an engine **crash** (wild memory
//!    access) or **payload execution** (a hijacked call into sprayed
//!    "shellcode").
//!
//! [`variants`] implements the paper's §VI-B-b four variant-generation
//! approaches (rename, minify, reorder+decoys, sub-function split), and
//! [`validate`] runs a script against a configurable engine to classify
//! the outcome.

pub mod catalog;
pub mod dna;
pub mod validate;
pub mod variants;

pub use catalog::{all_vdcs, alternate_implementation, vdc, ExploitKind, Vdc};
pub use dna::{build_database, extract_dna, extract_program_dna, extract_program_dna_with};
pub use jitbull_jit::CveId;
pub use validate::{run_vdc, VdcOutcome};
pub use variants::{generate, VariantKind};

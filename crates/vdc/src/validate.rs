//! Running demonstrator codes against configured engines and classifying
//! the outcome.

use jitbull_jit::engine::{Engine, EngineConfig};
use jitbull_vm::runtime::ExploitStatus;
use jitbull_vm::VmError;

use crate::catalog::{ExploitKind, Vdc};

/// What happened when a script ran.
#[derive(Debug, Clone, PartialEq)]
pub enum VdcOutcome {
    /// The exploit succeeded: runtime crash on a wild access.
    Crashed(String),
    /// The exploit succeeded: sprayed shellcode executed.
    ShellcodeExecuted,
    /// The script completed (or died on a benign script error) without
    /// compromising the runtime.
    Harmless {
        /// A script-level error, if the run ended in one (e.g. a type
        /// error on the neutralized path).
        error: Option<String>,
    },
}

impl VdcOutcome {
    /// Whether the run compromised the simulated runtime.
    pub fn is_compromised(&self) -> bool {
        !matches!(self, VdcOutcome::Harmless { .. })
    }

    /// Whether the outcome matches the PoC's expected manifestation.
    pub fn matches(&self, expected: ExploitKind) -> bool {
        matches!(
            (self, expected),
            (VdcOutcome::Crashed(_), ExploitKind::Crash)
                | (VdcOutcome::ShellcodeExecuted, ExploitKind::Shellcode)
        )
    }
}

/// Runs a script on the given engine and classifies the result.
///
/// # Errors
///
/// Parse/compile errors and fuel exhaustion propagate (they indicate a
/// broken script or harness, not an exploit outcome).
pub fn run_script(source: &str, engine: &mut Engine) -> Result<VdcOutcome, VmError> {
    match engine.run_source_with(source) {
        Ok(out) => Ok(match out.outcome.status {
            ExploitStatus::ShellcodeExecuted => VdcOutcome::ShellcodeExecuted,
            ExploitStatus::Crashed(msg) => VdcOutcome::Crashed(msg),
            ExploitStatus::Clean => VdcOutcome::Harmless { error: None },
        }),
        Err(VmError::Type(msg)) => Ok(VdcOutcome::Harmless { error: Some(msg) }),
        Err(other) => Err(other),
    }
}

/// Runs a [`Vdc`] on a fresh engine with the given configuration.
///
/// # Errors
///
/// See [`run_script`].
pub fn run_vdc(v: &Vdc, config: EngineConfig) -> Result<VdcOutcome, VmError> {
    let mut engine = Engine::new(config);
    run_script(&v.source, &mut engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{all_vdcs, alternate_implementation, vdc};
    use jitbull_jit::{CveId, VulnConfig};

    fn vulnerable_config(cve: CveId) -> EngineConfig {
        EngineConfig {
            vulns: VulnConfig::with([cve]),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn every_vdc_exploits_its_vulnerable_engine() {
        for v in all_vdcs() {
            let outcome =
                run_vdc(&v, vulnerable_config(v.cve)).unwrap_or_else(|e| panic!("{}: {e}", v.name));
            assert!(
                outcome.matches(v.expected),
                "{} expected {:?}, got {outcome:?}",
                v.name,
                v.expected
            );
        }
    }

    #[test]
    fn alternate_17026_implementation_exploits_too() {
        let alt = alternate_implementation(CveId::Cve2019_17026).unwrap();
        let outcome = run_vdc(&alt, vulnerable_config(CveId::Cve2019_17026)).unwrap();
        assert_eq!(outcome, VdcOutcome::ShellcodeExecuted);
    }

    #[test]
    fn vdcs_are_harmless_on_a_patched_engine() {
        // Sanity: without the vulnerability, the demonstrators either run
        // clean or die on a benign script error — never a crash/payload.
        for v in all_vdcs() {
            let outcome =
                run_vdc(&v, EngineConfig::default()).unwrap_or_else(|e| panic!("{}: {e}", v.name));
            assert!(
                !outcome.is_compromised(),
                "{} compromised a patched engine: {outcome:?}",
                v.name
            );
        }
    }

    #[test]
    fn vdcs_are_harmless_without_jit() {
        let v = vdc(CveId::Cve2019_17026);
        let config = EngineConfig {
            jit_enabled: false,
            vulns: VulnConfig::with([CveId::Cve2019_17026]),
            ..EngineConfig::default()
        };
        let outcome = run_vdc(&v, config).unwrap();
        assert!(!outcome.is_compromised(), "{outcome:?}");
    }
}

//! The paper's four variant-generation approaches (§VI-B-b):
//!
//! 1. **Renaming script variables** (Terser-like mangling) — shows JITBULL
//!    is not tied to syntax;
//! 2. **Minifying code** — renaming plus whitespace/formatting removal;
//! 3. **Mixing independent instructions and adding JITed functions** —
//!    reorders commuting statements inside function bodies and adds decoy
//!    hot functions that get JIT-compiled but play no part in the exploit;
//! 4. **Adding sub-functions** — splits each JITed function behind a chain
//!    of wrappers, multiplying the number of JITed functions and
//!    obfuscating which one carries the exploit.
//!
//! Every generator takes and returns a complete [`Vdc`]; outputs are
//! re-parsed, guaranteeing the variants are valid programs. The
//! `validate` tests check the paper's key property: each variant still
//! exploits the vulnerable engine.

use std::collections::{HashMap, HashSet};

use jitbull_frontend::ast::{Expr, FunctionDecl, Program, Stmt, Target};
use jitbull_frontend::printer::{print_program_with, Style};
use jitbull_frontend::visit::{collect_var_reads, collect_var_writes, stmt_has_heap_effects};
use jitbull_frontend::{parse_program, print_program};

use crate::catalog::Vdc;

/// The four variant kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// Approach 1: rename every user identifier.
    Renamed,
    /// Approach 2: rename + minified output.
    Minified,
    /// Approach 3: reorder independent statements + decoy JITed functions.
    Reordered,
    /// Approach 4: wrap each function behind sub-function chains.
    Split,
}

impl VariantKind {
    /// All four kinds in paper order.
    pub fn all() -> [VariantKind; 4] {
        [
            VariantKind::Renamed,
            VariantKind::Minified,
            VariantKind::Reordered,
            VariantKind::Split,
        ]
    }

    /// Suffix appended to the variant's name.
    pub fn suffix(self) -> &'static str {
        match self {
            VariantKind::Renamed => "renamed",
            VariantKind::Minified => "minified",
            VariantKind::Reordered => "reordered",
            VariantKind::Split => "split",
        }
    }
}

/// Names with compiler-level meaning that must never be renamed.
const RESERVED: &[&str] = &["print", "Math", "String", "Array"];

/// Generates a variant of a demonstrator code.
///
/// # Panics
///
/// Panics if the input source does not parse (catalog sources always do).
pub fn generate(base: &Vdc, kind: VariantKind) -> Vdc {
    let program = parse_program(&base.source).expect("catalog source parses");
    let (program, trigger_map, minified) = match kind {
        VariantKind::Renamed => {
            let (p, map) = rename_identifiers(program);
            (p, map, false)
        }
        VariantKind::Minified => {
            let (p, map) = rename_identifiers(program);
            (p, map, true)
        }
        VariantKind::Reordered => {
            let p = add_decoys(reorder_statements(program));
            (p, HashMap::new(), false)
        }
        VariantKind::Split => {
            let (p, map) = split_functions(program);
            (p, map, false)
        }
    };
    let style = if minified {
        Style::Minified
    } else {
        Style::Pretty
    };
    let source = print_program_with(&program, style);
    // Ensure the output is valid by re-parsing it.
    parse_program(&source).expect("generated variant parses");
    let trigger_functions = base
        .trigger_functions
        .iter()
        .map(|t| trigger_map.get(t).cloned().unwrap_or_else(|| t.clone()))
        .collect();
    Vdc {
        cve: base.cve,
        name: format!("{}-{}", base.name, kind.suffix()),
        source,
        expected: base.expected,
        trigger_functions,
    }
}

/// Approach 1: consistent renaming of all user-declared identifiers.
/// Returns the program and the old→new map for function names.
fn rename_identifiers(mut program: Program) -> (Program, HashMap<String, String>) {
    let mut declared: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    let declare = |name: &str, declared: &mut Vec<String>, seen: &mut HashSet<String>| {
        if !RESERVED.contains(&name) && seen.insert(name.to_owned()) {
            declared.push(name.to_owned());
        }
    };
    fn scan_stmts(stmts: &[Stmt], declare: &mut impl FnMut(&str)) {
        for s in stmts {
            match s {
                Stmt::VarDecl(name, _) => declare(name),
                Stmt::Func(f) => {
                    declare(&f.name);
                    for p in &f.params {
                        declare(p);
                    }
                    scan_stmts(&f.body, declare);
                }
                Stmt::If(_, a, b) => {
                    scan_stmts(a, declare);
                    scan_stmts(b, declare);
                }
                Stmt::While(_, body) => scan_stmts(body, declare),
                Stmt::For { init, body, .. } => {
                    if let Some(i) = init {
                        scan_stmts(std::slice::from_ref(i), declare);
                    }
                    scan_stmts(body, declare);
                }
                Stmt::Block(body) => scan_stmts(body, declare),
                _ => {}
            }
        }
    }
    {
        let mut d = |n: &str| declare(n, &mut declared, &mut seen);
        for f in &program.functions {
            d(&f.name);
            for p in &f.params {
                d(p);
            }
        }
        let funcs: Vec<_> = program.functions.iter().map(|f| f.body.clone()).collect();
        for body in &funcs {
            scan_stmts(body, &mut d);
        }
        scan_stmts(&program.top_level, &mut d);
    }
    let map: HashMap<String, String> = declared
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), format!("v{i}")))
        .collect();
    rename_in_program(&mut program, &map);
    (program, map)
}

fn rename_in_program(program: &mut Program, map: &HashMap<String, String>) {
    for f in &mut program.functions {
        rename_in_function(f, map);
    }
    rename_in_stmts(&mut program.top_level, map);
}

fn rename_in_function(f: &mut FunctionDecl, map: &HashMap<String, String>) {
    if let Some(n) = map.get(&f.name) {
        f.name = n.clone();
    }
    for p in &mut f.params {
        if let Some(n) = map.get(p) {
            *p = n.clone();
        }
    }
    rename_in_stmts(&mut f.body, map);
}

fn rename_in_stmts(stmts: &mut [Stmt], map: &HashMap<String, String>) {
    for s in stmts {
        match s {
            Stmt::VarDecl(name, init) => {
                if let Some(n) = map.get(name) {
                    *name = n.clone();
                }
                if let Some(e) = init {
                    rename_in_expr(e, map);
                }
            }
            Stmt::Expr(e) => rename_in_expr(e, map),
            Stmt::If(c, a, b) => {
                rename_in_expr(c, map);
                rename_in_stmts(a, map);
                rename_in_stmts(b, map);
            }
            Stmt::While(c, body) => {
                rename_in_expr(c, map);
                rename_in_stmts(body, map);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    rename_in_stmts(std::slice::from_mut(&mut **i), map);
                }
                if let Some(c) = cond {
                    rename_in_expr(c, map);
                }
                if let Some(st) = step {
                    rename_in_expr(st, map);
                }
                rename_in_stmts(body, map);
            }
            Stmt::Return(Some(e)) => rename_in_expr(e, map),
            Stmt::Func(f) => rename_in_function(f, map),
            Stmt::Block(body) => rename_in_stmts(body, map),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
}

fn rename_in_expr(expr: &mut Expr, map: &HashMap<String, String>) {
    jitbull_frontend::visit::mutate_expr(expr, &mut |e| match e {
        Expr::Var(name) => {
            if let Some(n) = map.get(name) {
                *name = n.clone();
            }
        }
        Expr::New(name, _) => {
            if let Some(n) = map.get(name) {
                *name = n.clone();
            }
        }
        Expr::Assign(Target::Var(name), _) => {
            if let Some(n) = map.get(name) {
                *name = n.clone();
            }
        }
        Expr::IncDec {
            target: Target::Var(name),
            ..
        } => {
            if let Some(n) = map.get(name) {
                *name = n.clone();
            }
        }
        _ => {}
    });
}

/// Approach 3a: bubble independent adjacent statements inside function
/// bodies (top-level order is left alone — the exploit's heap layout
/// depends on it).
fn reorder_statements(mut program: Program) -> Program {
    for f in &mut program.functions {
        reorder_in_stmts(&mut f.body);
    }
    program
}

#[allow(clippy::ptr_arg)] // recursion takes the Vec it reorders in place
fn reorder_in_stmts(stmts: &mut Vec<Stmt>) {
    // Recurse first.
    for s in stmts.iter_mut() {
        match s {
            Stmt::If(_, a, b) => {
                reorder_in_stmts(a);
                reorder_in_stmts(b);
            }
            Stmt::While(_, body) | Stmt::For { body, .. } => reorder_in_stmts(body),
            Stmt::Block(body) => reorder_in_stmts(body),
            Stmt::Func(f) => reorder_in_stmts(&mut f.body),
            _ => {}
        }
    }
    // One bubble pass swapping independent neighbours.
    let mut i = 0;
    while i + 1 < stmts.len() {
        if independent(&stmts[i], &stmts[i + 1]) {
            stmts.swap(i, i + 1);
            i += 2; // don't swap the same statement twice in one pass
        } else {
            i += 1;
        }
    }
}

/// Conservative statement independence: no heap effects on either side,
/// no control flow, and disjoint variable read/write sets.
fn independent(a: &Stmt, b: &Stmt) -> bool {
    fn simple(s: &Stmt) -> Option<(Vec<String>, Vec<String>)> {
        match s {
            Stmt::Expr(e) => {
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                collect_var_reads(e, &mut reads);
                collect_var_writes(e, &mut writes);
                Some((reads, writes))
            }
            Stmt::VarDecl(name, Some(e)) => {
                let mut reads = Vec::new();
                let mut writes = vec![name.clone()];
                collect_var_reads(e, &mut reads);
                collect_var_writes(e, &mut writes);
                Some((reads, writes))
            }
            _ => None,
        }
    }
    if stmt_has_heap_effects(a) || stmt_has_heap_effects(b) {
        return false;
    }
    let (Some((ra, wa)), Some((rb, wb))) = (simple(a), simple(b)) else {
        return false;
    };
    let disjoint = |xs: &[String], ys: &[String]| xs.iter().all(|x| !ys.contains(x));
    disjoint(&wa, &rb) && disjoint(&wa, &wb) && disjoint(&wb, &ra)
}

/// Approach 3b: decoy functions that get JIT-compiled but do not
/// participate in the exploit. They allocate nothing, so the exploit's
/// heap layout is untouched.
fn add_decoys(mut program: Program) -> Program {
    let decoys = parse_program(
        "function decoy_spin(x) { var t = 0; for (var i = 0; i < 8; i++) { t = t + x * i; } return t; }\n\
         function decoy_mix(a, b) { return (a ^ b) + (a & b) * 2; }\n\
         var decoy_acc = 0;\n\
         for (var decoy_i = 0; decoy_i < 1700; decoy_i++) { decoy_acc = decoy_acc + decoy_spin(decoy_i) + decoy_mix(decoy_i, 7); }\n",
    )
    .expect("decoy source parses");
    // Decoys go first: their warm-up runs before the exploit but touches
    // no arrays.
    let mut functions = decoys.functions;
    functions.extend(program.functions);
    program.functions = functions;
    let mut top = decoys.top_level;
    top.extend(program.top_level);
    program.top_level = top;
    program
}

/// Approach 4: every function body moves behind a two-deep wrapper chain;
/// the original name becomes the outermost wrapper so call sites are
/// untouched, and the innermost function (which carries the exploit
/// pattern) is a *new* JITed function.
fn split_functions(mut program: Program) -> (Program, HashMap<String, String>) {
    let mut new_functions = Vec::new();
    let mut trigger_map = HashMap::new();
    for f in program.functions.drain(..) {
        let inner_name = format!("{}_inner", f.name);
        let core_name = format!("{}_core", f.name);
        trigger_map.insert(f.name.clone(), core_name.clone());
        let args: Vec<Expr> = f.params.iter().map(|p| Expr::Var(p.clone())).collect();
        let outer = FunctionDecl {
            name: f.name.clone(),
            params: f.params.clone(),
            body: vec![Stmt::Return(Some(Expr::Call(
                Box::new(Expr::Var(inner_name.clone())),
                args.clone(),
            )))],
        };
        let inner = FunctionDecl {
            name: inner_name,
            params: f.params.clone(),
            body: vec![Stmt::Return(Some(Expr::Call(
                Box::new(Expr::Var(core_name.clone())),
                args,
            )))],
        };
        let core = FunctionDecl {
            name: core_name,
            params: f.params,
            body: f.body,
        };
        new_functions.push(outer);
        new_functions.push(inner);
        new_functions.push(core);
    }
    program.functions = new_functions;
    (program, trigger_map)
}

/// Renders a program back to pretty source (exposed for tests/examples).
pub fn to_source(program: &Program) -> String {
    print_program(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::vdc;
    use jitbull_jit::CveId;

    #[test]
    fn renamed_variant_has_no_original_identifiers() {
        let base = vdc(CveId::Cve2019_17026);
        let variant = generate(&base, VariantKind::Renamed);
        assert!(
            !variant.source.contains("shrink_smash"),
            "{}",
            variant.source
        );
        assert!(!variant.source.contains("prey"));
        assert!(variant.source.contains("print")); // reserved names stay
        assert!(variant.source.contains("Array"));
        // Trigger rename is tracked.
        assert_eq!(variant.trigger_functions.len(), 1);
        assert!(variant.trigger_functions[0].starts_with('v'));
    }

    #[test]
    fn minified_variant_is_one_line() {
        let base = vdc(CveId::Cve2019_9810);
        let variant = generate(&base, VariantKind::Minified);
        assert!(!variant.source.contains('\n') || variant.source.lines().count() <= 1);
        assert!(variant.source.len() < base.source.len());
    }

    #[test]
    fn reordered_variant_adds_decoys() {
        let base = vdc(CveId::Cve2019_11707);
        let variant = generate(&base, VariantKind::Reordered);
        assert!(variant.source.contains("decoy_spin"));
        assert!(variant.source.contains("decoy_mix"));
        assert_eq!(variant.trigger_functions, base.trigger_functions);
    }

    #[test]
    fn split_variant_triples_function_count() {
        let base = vdc(CveId::Cve2019_9791);
        let variant = generate(&base, VariantKind::Split);
        let p = parse_program(&variant.source).unwrap();
        let base_p = parse_program(&base.source).unwrap();
        assert_eq!(p.functions.len(), base_p.functions.len() * 3);
        assert_eq!(variant.trigger_functions, vec!["confuse_core"]);
    }

    #[test]
    fn all_variants_of_all_vdcs_generate_and_parse() {
        for v in crate::catalog::all_vdcs() {
            for kind in VariantKind::all() {
                let variant = generate(&v, kind);
                parse_program(&variant.source).unwrap_or_else(|e| panic!("{}: {e}", variant.name));
            }
        }
    }

    #[test]
    fn statement_independence_is_conservative() {
        let p = parse_program("var a = 1; var b = 2; a = b; f();").unwrap();
        // a=1 and b=2 commute.
        assert!(independent(&p.top_level[0], &p.top_level[1]));
        // b=2 and a=b do not (write-read).
        assert!(!independent(&p.top_level[1], &p.top_level[2]));
        // Calls never commute.
        assert!(!independent(&p.top_level[0], &p.top_level[3]));
    }
}

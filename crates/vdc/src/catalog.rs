//! The demonstrator-code catalog: one complete, working minijs exploit per
//! modeled CVE.
//!
//! Layout conventions the exploits rely on (see `jitbull_vm::heap`):
//! consecutively allocated arrays are adjacent; an array with capacity `c`
//! occupies `c + 2` cells (`length`, `capacity`, elements), so element
//! `c` of one array lands on the next array's length header. The sprayed
//! shellcode marker is `3735928559` (`0xDEADBEEF`,
//! [`jitbull_vm::runtime::SHELLCODE_MARKER`]).

use jitbull_jit::CveId;

/// How the public PoC manifests when it succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploitKind {
    /// The runtime crashes on a wild memory access.
    Crash,
    /// Control flow reaches attacker-sprayed shellcode.
    Shellcode,
}

/// A vulnerability demonstrator code.
#[derive(Debug, Clone)]
pub struct Vdc {
    /// The vulnerability it exploits.
    pub cve: CveId,
    /// Short label (distinguishes variants and alternate implementations).
    pub name: String,
    /// Complete minijs source.
    pub source: String,
    /// Expected outcome on a vulnerable, unprotected engine.
    pub expected: ExploitKind,
    /// The functions that must be JIT-compiled for the exploit to work
    /// (their DNA is what gets installed into JITBULL's database).
    pub trigger_functions: Vec<String>,
}

/// Iterations used to push trigger functions past the optimizing-JIT
/// threshold (default 1500).
pub const WARMUP: u32 = 1600;

/// Returns the primary demonstrator code for a CVE.
pub fn vdc(cve: CveId) -> Vdc {
    match cve {
        CveId::Cve2019_9791 => Vdc {
            cve,
            name: "cve-2019-9791-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["confuse".into()],
            source: format!(
                r#"
// CVE-2019-9791: type-inference confusion on a phi that can carry a raw
// number. After warm-up, the buggy TypeSpecialization drops the
// unbox:array guard; passing the number dereferences it as a pointer.
function confuse(flip, victim, slot) {{
  // Setup work as in the public PoC: derive a probe value (generic
  // loop/branch shapes shared with everyday code, but no element access
  // that would shadow the poisoned one below).
  var probe = 0;
  for (var k = 0; k < 4; k++) {{ probe = (probe + slot + k) & 255; }}
  var base;
  if (flip) {{ base = victim; }} else {{ base = 427008; }}
  return base[slot] + probe - probe;
}}
var target = new Array(8);
for (var w = 0; w < {WARMUP}; w++) {{ confuse(true, target, w & 7); }}
// Mis-compiled: the fake pointer is dereferenced -> wild read -> crash.
confuse(false, target, 0);
print("survived");
"#
            ),
        },
        CveId::Cve2019_9810 => Vdc {
            cve,
            name: "cve-2019-9810-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["masked_write".into()],
            source: format!(
                r#"
// CVE-2019-9810: same alias-analysis flaw as 17026, surfacing on masked
// indexes. GVN removes the bounds check for `i & 1023` once the function
// also resizes the array; a large masked index then writes far outside
// the allocation.
function masked_write(buf, i, v) {{
  // Key-mixing preamble, as in the public PoC.
  var acc = 0;
  for (var k = 0; k < 4; k++) {{ acc = (acc + buf[k & 7] + v) & 255; }}
  buf.length = 16;
  buf[i & 1023] = v;
  return acc;
}}
var buf = new Array(16);
for (var w = 0; w < {WARMUP}; w++) {{ masked_write(buf, 3, w); }}
// Mis-compiled: raw write ~900 cells past a 16-cell array -> wild write.
masked_write(buf, 900, 7);
print("survived");
"#
            ),
        },
        CveId::Cve2019_11707 => Vdc {
            cve,
            name: "cve-2019-11707-poc".into(),
            expected: ExploitKind::Shellcode,
            trigger_functions: vec!["pop_smash".into()],
            source: format!(
                r#"
// CVE-2019-11707: Array.prototype.pop mis-modeling. Checks on the popped
// array are considered redundant; an out-of-bounds write then corrupts
// the adjacent array's length header, yielding an arbitrary write that
// redirects a function-table entry to sprayed shellcode.
function pop_smash(arr, idx, v) {{
  // Scan the array first (the PoC walks it to groom the heap).
  var sum = 0;
  for (var k = 0; k < 3; k++) {{
    if (arr.length > k) {{ sum = sum + arr[k] - arr[k]; }}
  }}
  arr.pop();
  arr.length = 16;
  arr[idx] = v;
  return sum;
}}
function innocent() {{ return 1; }}
var first = new Array(16);
var second = new Array(16);
var table = [innocent];
for (var w = 0; w < {WARMUP}; w++) {{ pop_smash(first, 2, w); }}
// first[16] overlaps second's length header (cap 16 -> 18 cells).
pop_smash(first, 16, 1000000);
// second now reaches far past its storage: overwrite table[0]
// (second element 18 == table element 0 cell).
second[18] = 3735928559;
table[0]();
print("done");
"#
            ),
        },
        CveId::Cve2019_17026 => Vdc {
            cve,
            name: "cve-2019-17026-poc".into(),
            expected: ExploitKind::Shellcode,
            trigger_functions: vec!["shrink_smash".into()],
            source: format!(
                r#"
// CVE-2019-17026 (the paper's running example): shrinking arr.length
// makes GVN's broken dependency analysis treat the bounds check as
// redundant. The unchecked write overflows into the neighbouring
// array's length header; the corrupted neighbour provides the arbitrary
// read/write primitive that redirects a JIT function pointer to sprayed
// shellcode.
function shrink_smash(arr, idx, v) {{
  arr.length = 8;
  arr[idx] = v;
  return arr[0];
}}
function callee() {{ return 7; }}
var prey = new Array(8);
var neighbour = new Array(8);
var fntable = [callee];
for (var w = 0; w < {WARMUP}; w++) {{ shrink_smash(prey, 1, w); }}
// prey[8] is one cell past its 8-element storage: neighbour's length.
shrink_smash(prey, 8, 1000000);
// neighbour element 10 is fntable element 0 (10-cell arrays).
neighbour[10] = 3735928559;
fntable[0]();
print("done");
"#
            ),
        },
        CveId::Cve2019_9792 => Vdc {
            cve,
            name: "cve-2019-9792-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["loop_smash".into()],
            source: format!(
                r#"
// CVE-2019-9792: LICM hoists the loop's bounds check past a call that
// can resize the array, effectively removing it from the loop body.
function probe(buf) {{ return buf.length; }}
function loop_smash(buf, n, v) {{
  for (var i = 0; i < n; i++) {{
    probe(buf);
    buf[i] = v;
  }}
  return 0;
}}
var store = new Array(8);
for (var w = 0; w < {WARMUP}; w++) {{ loop_smash(store, 4, w); }}
// Mis-compiled: every write is raw; i marches straight off the heap.
loop_smash(store, 5000, 2);
print("survived");
"#
            ),
        },
        CveId::Cve2019_9795 => Vdc {
            cve,
            name: "cve-2019-9795-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["induction_read".into()],
            source: format!(
                r#"
// CVE-2019-9795: with a push() in the function, range analysis assumes
// the array only grows and drops checks on induction-variable indexes.
function induction_read(buf, n, v) {{
  var acc = 0;
  for (var i = 0; i < n; i++) {{
    acc = acc + buf[i];
  }}
  buf.push(v);
  return acc;
}}
var data = new Array(8);
for (var w = 0; w < {WARMUP}; w++) {{ induction_read(data, 4, w); }}
// Mis-compiled: reads run raw until they fall off the heap.
induction_read(data, 1000000, 1);
print("survived");
"#
            ),
        },
        CveId::Cve2019_9813 => Vdc {
            cve,
            name: "cve-2019-9813-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["twin_read".into()],
            source: format!(
                r#"
// CVE-2019-9813: the redundancy merge forgets dominance — the check in
// the else-branch is removed because the then-branch also checks the
// same array, although neither branch dominates the other.
function twin_read(buf, i, j, flip) {{
  var out = 0;
  if (flip) {{ out = buf[i]; }} else {{ buf[j] = out; out = j; }}
  return out;
}}
var cells = new Array(16);
for (var w = 0; w < {WARMUP}; w++) {{ twin_read(cells, w & 7, (w + 1) & 7, w & 1); }}
// Mis-compiled: the else-path write is raw -> wild write far off the heap.
twin_read(cells, 0, 1000000, false);
print("survived");
"#
            ),
        },
        CveId::Cve2020_26952 => Vdc {
            cve,
            name: "cve-2020-26952-poc".into(),
            expected: ExploitKind::Crash,
            trigger_functions: vec!["offset_read".into()],
            source: format!(
                r#"
// CVE-2020-26952: linear-arithmetic folding claims `i + 8` is covered by
// the check it folded away.
function offset_read(buf, i) {{
  return buf[i + 8];
}}
var plane = new Array(32);
for (var w = 0; w < {WARMUP}; w++) {{ offset_read(plane, w & 15); }}
// Mis-compiled: raw read at i + 8 with a huge i -> wild read.
offset_read(plane, 1000000);
print("survived");
"#
            ),
        },
    }
}

/// The independently written second implementation of CVE-2019-17026
/// (modeling the paper's two public PoCs by different developers: the
/// `lsw29475` and `maxpl0it` repositories). Uses different sizes, helper
/// structure, and locates the function pointer by scanning instead of by
/// a precomputed offset.
pub fn alternate_implementation(cve: CveId) -> Option<Vdc> {
    if cve != CveId::Cve2019_17026 {
        return None;
    }
    Some(Vdc {
        cve,
        name: "cve-2019-17026-impl2".into(),
        expected: ExploitKind::Shellcode,
        trigger_functions: vec!["resize_and_poke".into()],
        source: format!(
            r#"
// CVE-2019-17026 — second, independently structured implementation.
function resize_and_poke(victim, where, what) {{
  victim.length = 12;
  victim[where] = what;
  return victim.length;
}}
function say() {{ return 42; }}
var one = new Array(12);
var two = new Array(12);
var jumptable = [say];
var k = 0;
while (k < {WARMUP}) {{
  resize_and_poke(one, 2, k);
  k = k + 1;
}}
// Overflow `one` into `two`'s length header (cap 12 -> 14 cells).
resize_and_poke(one, 12, 262144);
// Hunt for the function pointer through the corrupted neighbour instead
// of hardcoding the offset.
var spot = 0 - 1;
for (var j = 0; j < 15; j++) {{
  if (typeof two[j] == "function") {{ spot = j; }}
}}
two[spot] = 3735928559;
jumptable[0]();
print("done");
"#
        ),
    })
}

/// All eight primary demonstrator codes, security-evaluation set first.
pub fn all_vdcs() -> Vec<Vdc> {
    CveId::all().into_iter().map(vdc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitbull_frontend::parse_program;

    #[test]
    fn every_vdc_parses() {
        for v in all_vdcs() {
            let p = parse_program(&v.source)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", v.name));
            for f in &v.trigger_functions {
                assert!(p.function(f).is_some(), "{}: trigger `{f}` missing", v.name);
            }
        }
        let alt = alternate_implementation(CveId::Cve2019_17026).unwrap();
        parse_program(&alt.source).unwrap();
    }

    #[test]
    fn security_set_expectations_match_paper() {
        // §VI-B: "Out of these 4 vulnerabilities, 2 lead to a crash (the
        // first two in our list), and the last two result in the
        // execution of a payload."
        assert_eq!(vdc(CveId::Cve2019_9791).expected, ExploitKind::Crash);
        assert_eq!(vdc(CveId::Cve2019_9810).expected, ExploitKind::Crash);
        assert_eq!(vdc(CveId::Cve2019_11707).expected, ExploitKind::Shellcode);
        assert_eq!(vdc(CveId::Cve2019_17026).expected, ExploitKind::Shellcode);
    }

    #[test]
    fn alternate_implementation_only_for_17026() {
        assert!(alternate_implementation(CveId::Cve2019_17026).is_some());
        assert!(alternate_implementation(CveId::Cve2019_9810).is_none());
    }
}

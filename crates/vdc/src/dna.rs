//! Step 1 of the paper's workflow: extracting VDC DNA and building the
//! JITBULL database.
//!
//! DNA extraction is purely structural — the trigger functions are
//! compiled through the (vulnerable) pipeline with tracing on, and the Δ
//! extractor digests the per-pass snapshots. No execution of the exploit
//! is required, which mirrors the paper's recommendation that the
//! *maintainer* extracts and ships DNA vectors rather than handing users
//! a live weapon.

use jitbull::{Dna, DnaDatabase, Guard};
use jitbull_frontend::parse_program;
use jitbull_jit::pipeline::{optimize, OptimizeOptions, N_SLOTS};
use jitbull_jit::VulnConfig;
use jitbull_mir::build_mir;
use jitbull_vm::{compile_program, VmError};

use crate::catalog::Vdc;

/// Extracts the DNA of each trigger function of a demonstrator code,
/// compiling on an engine with the given vulnerabilities present.
///
/// # Errors
///
/// Returns [`VmError`] if the VDC source fails to parse/compile or a
/// trigger function is missing.
pub fn extract_dna(v: &Vdc, vulns: &VulnConfig) -> Result<Vec<(String, Dna)>, VmError> {
    let program = parse_program(&v.source).map_err(|e| VmError::Parse(e.to_string()))?;
    let module = compile_program(&program)?;
    let mut out = Vec::new();
    for name in &v.trigger_functions {
        let fid = module
            .function_id(name)
            .ok_or_else(|| VmError::Compile(format!("trigger `{name}` missing in {}", v.name)))?;
        let mir = build_mir(&module, fid).map_err(|e| VmError::Compile(e.to_string()))?;
        let result = optimize(
            mir,
            vulns,
            &OptimizeOptions {
                trace: true,
                ..Default::default()
            },
        );
        let dna = Guard::extract(&result.trace, N_SLOTS);
        out.push((name.clone(), dna));
    }
    Ok(out)
}

/// Extracts the DNA of *every* function in an arbitrary program (used by
/// the fuzzer integration, where nobody knows which function carries the
/// bug). Trivial DNA entries are filtered by the database on install.
///
/// # Errors
///
/// Returns [`VmError`] on parse/compile failures.
pub fn extract_program_dna(
    source: &str,
    vulns: &VulnConfig,
) -> Result<Vec<(String, Dna)>, VmError> {
    extract_program_dna_with(source, vulns, &std::collections::HashSet::new())
}

/// Like [`extract_program_dna`], but compiling with the given pipeline
/// slots disabled — the configuration a JITBULL-protected engine would
/// actually use after earlier matches, which can *unshadow* a second bug
/// further down the pipeline (see the fuzzer crate's triage loop).
///
/// # Errors
///
/// Returns [`VmError`] on parse/compile failures.
pub fn extract_program_dna_with(
    source: &str,
    vulns: &VulnConfig,
    disabled_slots: &std::collections::HashSet<usize>,
) -> Result<Vec<(String, Dna)>, VmError> {
    let program = parse_program(source).map_err(|e| VmError::Parse(e.to_string()))?;
    let module = compile_program(&program)?;
    let mut out = Vec::new();
    for (i, f) in module.functions.iter().enumerate() {
        if f.name == "<main>" {
            continue;
        }
        let fid = jitbull_vm::bytecode::FuncId(i as u32);
        let Ok(mir) = build_mir(&module, fid) else {
            continue;
        };
        let result = optimize(
            mir,
            vulns,
            &OptimizeOptions {
                trace: true,
                disabled_slots: disabled_slots.clone(),
                ..Default::default()
            },
        );
        out.push((f.name.clone(), Guard::extract(&result.trace, N_SLOTS)));
    }
    Ok(out)
}

/// Builds a JITBULL database from a set of demonstrator codes (one entry
/// per trigger function). Each VDC's DNA is extracted on an engine
/// vulnerable to *its own* CVE — the situation during that CVE's
/// vulnerability window.
///
/// # Errors
///
/// Propagates extraction errors.
pub fn build_database(vdcs: &[Vdc]) -> Result<DnaDatabase, VmError> {
    let mut db = DnaDatabase::new();
    for v in vdcs {
        let vulns = VulnConfig::with([v.cve]);
        for (function, dna) in extract_dna(v, &vulns)? {
            db.install(v.cve.name(), function, dna);
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{all_vdcs, vdc};
    use jitbull_jit::CveId;

    #[test]
    fn vdc_dna_is_nontrivial_and_marks_the_buggy_slot() {
        for v in all_vdcs() {
            let vulns = VulnConfig::with([v.cve]);
            let dnas = extract_dna(&v, &vulns).unwrap();
            assert!(!dnas.is_empty());
            for (name, dna) in &dnas {
                assert!(!dna.is_trivial(), "{}:{name} produced trivial DNA", v.name);
                let slot = v.cve.pass_slot();
                assert!(
                    !dna.deltas[slot].is_empty(),
                    "{}:{name} has empty delta in its buggy slot {slot}",
                    v.name
                );
            }
        }
    }

    #[test]
    fn database_builds_with_all_eight() {
        let db = build_database(&all_vdcs()).unwrap();
        assert_eq!(db.len(), 8);
        assert_eq!(db.cves().len(), 8);
    }

    #[test]
    fn patched_engine_dna_differs_from_vulnerable_dna() {
        let v = vdc(CveId::Cve2019_17026);
        let vulnerable = extract_dna(&v, &VulnConfig::with([v.cve])).unwrap();
        let patched = extract_dna(&v, &VulnConfig::none()).unwrap();
        assert_ne!(vulnerable[0].1, patched[0].1);
    }

    #[test]
    fn dna_database_round_trips_through_text() {
        let db = build_database(&[vdc(CveId::Cve2019_17026)]).unwrap();
        let text = db.to_text();
        let back = DnaDatabase::from_text(&text, N_SLOTS).unwrap();
        assert_eq!(db, back);
    }
}
